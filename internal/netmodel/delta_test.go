package netmodel

import (
	"math"
	"strings"
	"testing"
)

func deltaTestInstance() *Instance {
	in := NewZeroInstance(2, 3, 4)
	for i := 0; i < 3; i++ {
		in.ReflectorCost[i] = 10
		in.Fanout[i] = 4
		for k := 0; k < 2; k++ {
			in.SrcRefLoss[k][i] = 0.02
			in.SrcRefCost[k][i] = 2
		}
		for j := 0; j < 4; j++ {
			in.RefSinkLoss[i][j] = 0.03
			in.RefSinkCost[i][j] = 1
		}
	}
	for j := 0; j < 4; j++ {
		in.Threshold[j] = 0.99
	}
	return in
}

func TestDeltaApply(t *testing.T) {
	in := deltaTestInstance()
	d := &Delta{
		Note:               "test",
		SetThreshold:       []SinkValue{{Sink: 1, Value: 0}, {Sink: 2, Value: 0.95}},
		SetFanout:          []RefValue{{Ref: 0, Value: 0}},
		ScaleReflectorCost: []RefValue{{Ref: 1, Value: 2}},
		ScaleSrcRefCost:    []ArcValue{{A: 0, B: 1, Value: 0.5}},
		ScaleRefSinkCost:   []ArcValue{{A: 2, B: 3, Value: 3}},
		SetSrcRefLoss:      []ArcValue{{A: 1, B: 2, Value: 0.5}},
		SetRefSinkLoss:     []ArcValue{{A: 0, B: 0, Value: 0.25}},
		ScaleRefSinkLoss:   []ArcValue{{A: 1, B: 1, Value: 100}},
	}
	if d.Empty() || d.Size() != 9 {
		t.Fatalf("Size = %d, want 9", d.Size())
	}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != 9 {
		t.Fatalf("dirty set size = %d, want 9 (one entry per edit)", ds.Size())
	}
	if in.Threshold[1] != 0 || in.Threshold[2] != 0.95 {
		t.Fatalf("thresholds not applied: %v", in.Threshold)
	}
	if in.Fanout[0] != 0 {
		t.Fatalf("fanout not applied: %v", in.Fanout)
	}
	if in.ReflectorCost[1] != 20 {
		t.Fatalf("reflector cost = %v, want 20", in.ReflectorCost[1])
	}
	if in.SrcRefCost[0][1] != 1 || in.RefSinkCost[2][3] != 3 {
		t.Fatal("arc costs not scaled")
	}
	if in.SrcRefLoss[1][2] != 0.5 || in.RefSinkLoss[0][0] != 0.25 {
		t.Fatal("losses not set")
	}
	if in.RefSinkLoss[1][1] != 1 {
		t.Fatalf("scaled loss must saturate at 1, got %v", in.RefSinkLoss[1][1])
	}
	// The edited instance must still validate.
	if err := in.Validate(); err != nil {
		t.Fatalf("instance invalid after delta: %v", err)
	}
}

func TestDeltaRejectsAndLeavesUntouched(t *testing.T) {
	cases := []Delta{
		{SetThreshold: []SinkValue{{Sink: 9, Value: 0.5}}},
		{SetThreshold: []SinkValue{{Sink: 0, Value: 1}}},
		{SetFanout: []RefValue{{Ref: -1, Value: 2}}},
		{SetFanout: []RefValue{{Ref: 0, Value: -3}}},
		{ScaleReflectorCost: []RefValue{{Ref: 0, Value: -1}}},
		{ScaleSrcRefCost: []ArcValue{{A: 5, B: 0, Value: 1}}},
		{ScaleRefSinkCost: []ArcValue{{A: 0, B: 7, Value: 1}}},
		{SetSrcRefLoss: []ArcValue{{A: 0, B: 0, Value: 1.5}}},
		{SetRefSinkLoss: []ArcValue{{A: 0, B: 0, Value: -0.1}}},
		{ScaleRefSinkLoss: []ArcValue{{A: 3, B: 0, Value: 1}}},
	}
	for i, d := range cases {
		in := deltaTestInstance()
		before := in.Clone()
		if ds, err := d.Apply(in); err == nil {
			t.Fatalf("case %d: bad delta accepted", i)
		} else if ds != nil {
			t.Fatalf("case %d: rejected delta reported a dirty set", i)
		} else if !strings.Contains(err.Error(), "delta") {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		// Failed apply must leave the instance untouched.
		if in.Threshold[0] != before.Threshold[0] || in.Fanout[0] != before.Fanout[0] ||
			in.SrcRefLoss[0][0] != before.SrcRefLoss[0][0] || in.RefSinkLoss[0][0] != before.RefSinkLoss[0][0] {
			t.Fatalf("case %d: instance mutated by rejected delta", i)
		}
	}
}

func TestDeltaEmpty(t *testing.T) {
	d := &Delta{Note: "noop"}
	if !d.Empty() {
		t.Fatal("note-only delta must be empty")
	}
	in := deltaTestInstance()
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Empty() {
		t.Fatal("empty delta reported a non-empty dirty set")
	}
}

func TestDeltaRejectsInfiniteFanout(t *testing.T) {
	in := deltaTestInstance()
	d := Delta{SetFanout: []RefValue{{Ref: 0, Value: math.Inf(1)}}}
	if _, err := d.Apply(in); err == nil {
		t.Fatal("infinite fanout accepted")
	}
}

// TestDeltaApplyDirtyCategories pins the edit→category mapping: each delta
// field must land its entries in the DirtySet field the Patcher expects.
func TestDeltaApplyDirtyCategories(t *testing.T) {
	in := deltaTestInstance()
	d := &Delta{
		SetThreshold:     []SinkValue{{Sink: 3, Value: 0.5}},
		SetFanout:        []RefValue{{Ref: 2, Value: 7}},
		ScaleSrcRefCost:  []ArcValue{{A: 1, B: 2, Value: 2}},
		ScaleRefSinkLoss: []ArcValue{{A: 0, B: 1, Value: 0.5}},
		ScaleSrcRefLoss:  []ArcValue{{A: 1, B: 0, Value: 2}},
	}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.SinkDemand) != 1 || ds.SinkDemand[0] != 3 {
		t.Fatalf("SinkDemand = %v", ds.SinkDemand)
	}
	if len(ds.Fanout) != 1 || ds.Fanout[0] != 2 {
		t.Fatalf("Fanout = %v", ds.Fanout)
	}
	if len(ds.SrcRefCost) != 1 || ds.SrcRefCost[0] != (Arc{A: 1, B: 2}) {
		t.Fatalf("SrcRefCost = %v", ds.SrcRefCost)
	}
	if len(ds.RefSinkLoss) != 1 || ds.RefSinkLoss[0] != (Arc{A: 0, B: 1}) {
		t.Fatalf("RefSinkLoss = %v", ds.RefSinkLoss)
	}
	if len(ds.SrcRefLoss) != 1 || ds.SrcRefLoss[0] != (Arc{A: 1, B: 0}) {
		t.Fatalf("SrcRefLoss = %v", ds.SrcRefLoss)
	}
	// Merge + Empty behave as a set accumulator.
	all := &DirtySet{}
	all.Merge(ds)
	all.Merge(nil)
	all.Merge(ds)
	if all.Size() != 2*ds.Size() {
		t.Fatalf("merged size = %d, want %d", all.Size(), 2*ds.Size())
	}
}

// TestDiffDesigns checks the bias-flip report: only cells whose membership
// in the deployed design changed are listed, and nil designs behave as
// "nothing deployed".
func TestDiffDesigns(t *testing.T) {
	in := deltaTestInstance()
	a := NewDesign(in)
	a.Serve[0][1] = true
	a.Normalize(in)
	if ds := DiffDesigns(nil, nil); ds != nil {
		t.Fatal("nil→nil must report nothing")
	}
	ds := DiffDesigns(nil, a)
	if len(ds.RefSinkCost) != 1 || ds.RefSinkCost[0] != (Arc{A: 0, B: 1}) {
		t.Fatalf("first deployment serve flips = %v", ds.RefSinkCost)
	}
	if len(ds.ReflectorCost) != 1 || ds.ReflectorCost[0] != 0 {
		t.Fatalf("first deployment build flips = %v", ds.ReflectorCost)
	}
	b := a.Clone()
	b.Serve[2][3] = true
	b.Normalize(in)
	ds = DiffDesigns(a, b)
	if len(ds.RefSinkCost) != 1 || ds.RefSinkCost[0] != (Arc{A: 2, B: 3}) {
		t.Fatalf("a→b serve flips = %v", ds.RefSinkCost)
	}
	if ds2 := DiffDesigns(b, b.Clone()); ds2 != nil {
		t.Fatalf("identical designs must report nothing, got %+v", ds2)
	}
	// Un-deploying flips the same cells back.
	back := DiffDesigns(b, a)
	if len(back.RefSinkCost) != 1 || back.RefSinkCost[0] != (Arc{A: 2, B: 3}) {
		t.Fatalf("b→a serve flips = %v", back.RefSinkCost)
	}
}
