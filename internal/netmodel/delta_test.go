package netmodel

import (
	"math"
	"strings"
	"testing"
)

func deltaTestInstance() *Instance {
	in := NewZeroInstance(2, 3, 4)
	for i := 0; i < 3; i++ {
		in.ReflectorCost[i] = 10
		in.Fanout[i] = 4
		for k := 0; k < 2; k++ {
			in.SrcRefLoss[k][i] = 0.02
			in.SrcRefCost[k][i] = 2
		}
		for j := 0; j < 4; j++ {
			in.RefSinkLoss[i][j] = 0.03
			in.RefSinkCost[i][j] = 1
		}
	}
	for j := 0; j < 4; j++ {
		in.Threshold[j] = 0.99
	}
	return in
}

func TestDeltaApply(t *testing.T) {
	in := deltaTestInstance()
	d := &Delta{
		Note:               "test",
		SetThreshold:       []SinkValue{{Sink: 1, Value: 0}, {Sink: 2, Value: 0.95}},
		SetFanout:          []RefValue{{Ref: 0, Value: 0}},
		ScaleReflectorCost: []RefValue{{Ref: 1, Value: 2}},
		ScaleSrcRefCost:    []ArcValue{{A: 0, B: 1, Value: 0.5}},
		ScaleRefSinkCost:   []ArcValue{{A: 2, B: 3, Value: 3}},
		SetSrcRefLoss:      []ArcValue{{A: 1, B: 2, Value: 0.5}},
		SetRefSinkLoss:     []ArcValue{{A: 0, B: 0, Value: 0.25}},
		ScaleRefSinkLoss:   []ArcValue{{A: 1, B: 1, Value: 100}},
	}
	if d.Empty() || d.Size() != 9 {
		t.Fatalf("Size = %d, want 9", d.Size())
	}
	if err := d.Apply(in); err != nil {
		t.Fatal(err)
	}
	if in.Threshold[1] != 0 || in.Threshold[2] != 0.95 {
		t.Fatalf("thresholds not applied: %v", in.Threshold)
	}
	if in.Fanout[0] != 0 {
		t.Fatalf("fanout not applied: %v", in.Fanout)
	}
	if in.ReflectorCost[1] != 20 {
		t.Fatalf("reflector cost = %v, want 20", in.ReflectorCost[1])
	}
	if in.SrcRefCost[0][1] != 1 || in.RefSinkCost[2][3] != 3 {
		t.Fatal("arc costs not scaled")
	}
	if in.SrcRefLoss[1][2] != 0.5 || in.RefSinkLoss[0][0] != 0.25 {
		t.Fatal("losses not set")
	}
	if in.RefSinkLoss[1][1] != 1 {
		t.Fatalf("scaled loss must saturate at 1, got %v", in.RefSinkLoss[1][1])
	}
	// The edited instance must still validate.
	if err := in.Validate(); err != nil {
		t.Fatalf("instance invalid after delta: %v", err)
	}
}

func TestDeltaRejectsAndLeavesUntouched(t *testing.T) {
	cases := []Delta{
		{SetThreshold: []SinkValue{{Sink: 9, Value: 0.5}}},
		{SetThreshold: []SinkValue{{Sink: 0, Value: 1}}},
		{SetFanout: []RefValue{{Ref: -1, Value: 2}}},
		{SetFanout: []RefValue{{Ref: 0, Value: -3}}},
		{ScaleReflectorCost: []RefValue{{Ref: 0, Value: -1}}},
		{ScaleSrcRefCost: []ArcValue{{A: 5, B: 0, Value: 1}}},
		{ScaleRefSinkCost: []ArcValue{{A: 0, B: 7, Value: 1}}},
		{SetSrcRefLoss: []ArcValue{{A: 0, B: 0, Value: 1.5}}},
		{SetRefSinkLoss: []ArcValue{{A: 0, B: 0, Value: -0.1}}},
		{ScaleRefSinkLoss: []ArcValue{{A: 3, B: 0, Value: 1}}},
	}
	for i, d := range cases {
		in := deltaTestInstance()
		before := in.Clone()
		if err := d.Apply(in); err == nil {
			t.Fatalf("case %d: bad delta accepted", i)
		} else if !strings.Contains(err.Error(), "delta") {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		// Failed apply must leave the instance untouched.
		if in.Threshold[0] != before.Threshold[0] || in.Fanout[0] != before.Fanout[0] ||
			in.SrcRefLoss[0][0] != before.SrcRefLoss[0][0] || in.RefSinkLoss[0][0] != before.RefSinkLoss[0][0] {
			t.Fatalf("case %d: instance mutated by rejected delta", i)
		}
	}
}

func TestDeltaEmpty(t *testing.T) {
	d := &Delta{Note: "noop"}
	if !d.Empty() {
		t.Fatal("note-only delta must be empty")
	}
	in := deltaTestInstance()
	if err := d.Apply(in); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRejectsInfiniteFanout(t *testing.T) {
	in := deltaTestInstance()
	d := Delta{SetFanout: []RefValue{{Ref: 0, Value: math.Inf(1)}}}
	if err := d.Apply(in); err == nil {
		t.Fatal("infinite fanout accepted")
	}
}
