package netmodel_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/agg"
	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/netmodel"
)

// FuzzDeltaApply fuzzes the live engine's mutation surface: arbitrary
// byte-derived Deltas applied to a fixed clustered instance must either be
// rejected with a validation error — leaving the instance bit-for-bit
// untouched — or leave it dimension-consistent and value-valid (Validate
// passes: no NaNs, no negative capacities or costs, probabilities in
// range). No input may panic.
//
// The property is transitive: because a successful Apply yields a valid
// instance again, the whole live timeline (an arbitrary sequence of
// Deltas) stays inside the valid-instance set. This harness is what
// surfaced the cost-scaling overflow (two huge scale factors pushing a
// cost to +Inf, a later ×0 turning it into NaN) that Apply now saturates
// away.
//
// The seed corpus is drawn from the live scenario library — every distinct
// delta shape the shipped scenarios emit — plus hand-written edge cases
// around each validation boundary.
func FuzzDeltaApply(f *testing.F) {
	for _, name := range live.Names() {
		sc, err := live.Make(name, 3, 12)
		if err != nil {
			f.Fatal(err)
		}
		// One representative event per distinct note prefix keeps the
		// corpus small while covering every delta field the library uses.
		seen := map[byte]bool{}
		for _, ev := range sc.Events {
			key := byte(0)
			if ev.Delta.Note != "" {
				key = ev.Delta.Note[0]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			data, err := json.Marshal(ev.Delta)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	for _, s := range []string{
		`{}`,
		`{"set_threshold":[{"sink":0,"value":0.5}]}`,
		`{"set_threshold":[{"sink":-1,"value":0.5}]}`,
		`{"set_threshold":[{"sink":0,"value":1}]}`,
		`{"set_fanout":[{"ref":0,"value":0}]}`,
		`{"set_fanout":[{"ref":99999,"value":3}]}`,
		`{"scale_reflector_cost":[{"ref":0,"value":1e308},{"ref":0,"value":1e308},{"ref":0,"value":0}]}`,
		`{"scale_src_ref_cost":[{"a":0,"b":0,"value":2.5}]}`,
		`{"set_src_ref_loss":[{"a":0,"b":0,"value":1.5}]}`,
		`{"set_ref_sink_loss":[{"a":0,"b":0,"value":1}]}`,
		`{"scale_ref_sink_loss":[{"a":0,"b":0,"value":1e300},{"a":0,"b":0,"value":1e300}]}`,
		`{"set_stream":[{"sink":0,"stream":0,"value":0.5}]}`,
		`{"set_stream":[{"sink":0,"stream":0,"value":0}]}`,
		`{"set_stream":[{"sink":0,"stream":99,"value":0.5}]}`,
		`{"set_stream":[{"sink":-1,"stream":0,"value":0.5}]}`,
		`{"set_stream":[{"sink":0,"stream":0,"value":1}]}`,
		`{"set_stream":[{"sink":3,"stream":1,"value":0.97},{"sink":3,"stream":1,"value":0}]}`,
		// Aggregation-crossing churn: a viewer flips which of its stream
		// slots is active (failover shape) — weight moves BETWEEN the
		// aggregate units of its super-sink; a second viewer leaves both
		// slots while a neighbor in the same group joins — weight-neutral at
		// one unit, a real drop at another. These drive agg.Sync's
		// re-keying of touched units across aggregate boundaries.
		`{"set_stream":[{"sink":0,"stream":0,"value":0},{"sink":0,"stream":1,"value":0.97}]}`,
		`{"set_stream":[{"sink":1,"stream":0,"value":0},{"sink":1,"stream":1,"value":0},{"sink":2,"stream":0,"value":0.97}]}`,
		`{"set_threshold":[{"sink":0,"value":0}],"set_stream":[{"sink":4,"stream":1,"value":0.93}],"scale_ref_sink_cost":[{"a":0,"b":0,"value":1.2}]}`,
	} {
		f.Add([]byte(s))
	}

	// The base is a NATIVE MULTI-STREAM instance (2 streams per sink), so
	// stream subscribe/unsubscribe edits resolve against a real grouping
	// and the dirty-set completeness check covers the per-unit thresholds
	// they land on. Single-stream behavior is a strict special case.
	cc := gen.DefaultClustered(3, 2, 2, 4)
	cc.StreamsPerSink = 2
	base := gen.Clustered(cc, 1)
	if err := base.Validate(); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d netmodel.Delta
		if err := json.Unmarshal(data, &d); err != nil {
			t.Skip()
		}
		in := base.Clone()
		before, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		snapshot := in.Clone()
		ds, err := d.Apply(in)
		if err != nil {
			after, merr := json.Marshal(in)
			if merr != nil {
				t.Fatal(merr)
			}
			if !bytes.Equal(before, after) {
				t.Fatalf("Apply returned %v but mutated the instance", err)
			}
			if ds != nil {
				t.Fatalf("Apply returned %v and a dirty set", err)
			}
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("delta %s applied cleanly but left the instance invalid: %v", data, err)
		}
		// Dimensions are frozen by contract (warm-started LPs depend on it).
		if s, r, dd := in.Dims(); s != base.NumSources || r != base.NumReflectors || dd != base.NumSinks {
			t.Fatalf("delta changed dimensions to (%d,%d,%d)", s, r, dd)
		}
		checkDirtyComplete(t, snapshot, in, ds)
		checkAggregateSync(t, snapshot, in, ds)
	})
}

// checkAggregateSync asserts the aggregation plane's half of the dirty-set
// contract: folding the reported set through agg.Sync must leave the
// incrementally-maintained aggregate instance cell-identical to a fresh
// fold of the mutated instance, and every aggregate cell that moved must be
// in the emitted aggregate dirty set. A miss on either side would leave an
// aggregated session's LP silently summarizing stale member state.
func checkAggregateSync(t *testing.T, before, after *netmodel.Instance, ds *netmodel.DirtySet) {
	t.Helper()
	// Pin the grouping (mixing viewers across group labels) so the fresh
	// fold of the mutated instance partitions identically: auto anchor
	// groups are a function of the drifting costs.
	groups := make([]int, before.NumViewers())
	for g := range groups {
		groups[g] = g % 3
	}
	cfg := agg.Config{GroupOf: groups}
	st, err := agg.Build(before, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := st.Agg.Clone()
	out := st.Sync(after, ds)
	fresh, err := agg.Build(after, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inInts := func(list []int, x int) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	inArcs := func(list []netmodel.Arc, a, b int) bool {
		for _, v := range list {
			if v.A == a && v.B == b {
				return true
			}
		}
		return false
	}
	for au := 0; au < st.Units(); au++ {
		if st.Agg.Threshold[au] != fresh.Agg.Threshold[au] {
			t.Fatalf("aggregate threshold[%d]: synced %g, fresh fold %g",
				au, st.Agg.Threshold[au], fresh.Agg.Threshold[au])
		}
		if st.Agg.UnitWeight[au] != fresh.Agg.UnitWeight[au] {
			t.Fatalf("aggregate weight[%d]: synced %g, fresh fold %g",
				au, st.Agg.UnitWeight[au], fresh.Agg.UnitWeight[au])
		}
		if st.Agg.Threshold[au] != prev.Threshold[au] && !inInts(out.SinkDemand, au) {
			t.Fatalf("aggregate threshold[%d] changed but is not in SinkDemand", au)
		}
		if st.Agg.UnitWeight[au] != prev.UnitWeight[au] && !inInts(out.SinkWeight, au) {
			t.Fatalf("aggregate weight[%d] changed but is not in SinkWeight", au)
		}
		for i := range st.Agg.RefSinkCost {
			if st.Agg.RefSinkCost[i][au] != fresh.Agg.RefSinkCost[i][au] {
				t.Fatalf("aggregate cost[%d][%d]: synced %g, fresh fold %g",
					i, au, st.Agg.RefSinkCost[i][au], fresh.Agg.RefSinkCost[i][au])
			}
			if st.Agg.RefSinkLoss[i][au] != fresh.Agg.RefSinkLoss[i][au] {
				t.Fatalf("aggregate loss[%d][%d]: synced %g, fresh fold %g",
					i, au, st.Agg.RefSinkLoss[i][au], fresh.Agg.RefSinkLoss[i][au])
			}
			if st.Agg.RefSinkCost[i][au] != prev.RefSinkCost[i][au] && !inArcs(out.RefSinkCost, i, au) {
				t.Fatalf("aggregate cost[%d][%d] changed but is not in RefSinkCost", i, au)
			}
			if st.Agg.RefSinkLoss[i][au] != prev.RefSinkLoss[i][au] && !inArcs(out.RefSinkLoss, i, au) {
				t.Fatalf("aggregate loss[%d][%d] changed but is not in RefSinkLoss", i, au)
			}
		}
	}
}

// checkDirtyComplete asserts the dirty-set contract the incremental LP
// rebuild depends on: every cell Apply actually changed must be listed in
// the reported set (the set may over-report, never under-report). A missed
// cell would leave a patched LP silently stale.
func checkDirtyComplete(t *testing.T, before, after *netmodel.Instance, ds *netmodel.DirtySet) {
	t.Helper()
	if ds == nil {
		ds = &netmodel.DirtySet{}
	}
	inInts := func(list []int, x int) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	inArcs := func(list []netmodel.Arc, a, b int) bool {
		for _, v := range list {
			if v.A == a && v.B == b {
				return true
			}
		}
		return false
	}
	for j := range before.Threshold {
		if before.Threshold[j] != after.Threshold[j] && !inInts(ds.SinkDemand, j) {
			t.Fatalf("threshold of sink %d changed but is not in SinkDemand %v", j, ds.SinkDemand)
		}
	}
	for i := range before.Fanout {
		if before.Fanout[i] != after.Fanout[i] && !inInts(ds.Fanout, i) {
			t.Fatalf("fanout of reflector %d changed but is not in Fanout %v", i, ds.Fanout)
		}
		if before.ReflectorCost[i] != after.ReflectorCost[i] && !inInts(ds.ReflectorCost, i) {
			t.Fatalf("cost of reflector %d changed but is not in ReflectorCost %v", i, ds.ReflectorCost)
		}
	}
	for k := range before.SrcRefCost {
		for i := range before.SrcRefCost[k] {
			if before.SrcRefCost[k][i] != after.SrcRefCost[k][i] && !inArcs(ds.SrcRefCost, k, i) {
				t.Fatalf("src-ref cost (%d,%d) changed but is not in SrcRefCost", k, i)
			}
			if before.SrcRefLoss[k][i] != after.SrcRefLoss[k][i] && !inArcs(ds.SrcRefLoss, k, i) {
				t.Fatalf("src-ref loss (%d,%d) changed but is not in SrcRefLoss", k, i)
			}
		}
	}
	for i := range before.RefSinkCost {
		for j := range before.RefSinkCost[i] {
			if before.RefSinkCost[i][j] != after.RefSinkCost[i][j] && !inArcs(ds.RefSinkCost, i, j) {
				t.Fatalf("ref-sink cost (%d,%d) changed but is not in RefSinkCost", i, j)
			}
			if before.RefSinkLoss[i][j] != after.RefSinkLoss[i][j] && !inArcs(ds.RefSinkLoss, i, j) {
				t.Fatalf("ref-sink loss (%d,%d) changed but is not in RefSinkLoss", i, j)
			}
		}
	}
}
