package netmodel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func tinyInstance() *Instance {
	in := NewZeroInstance(2, 3, 4)
	for i := 0; i < 3; i++ {
		in.ReflectorCost[i] = float64(i + 1)
		in.Fanout[i] = 2
	}
	for k := 0; k < 2; k++ {
		for i := 0; i < 3; i++ {
			in.SrcRefLoss[k][i] = 0.01 * float64(k+1)
			in.SrcRefCost[k][i] = 1
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			in.RefSinkLoss[i][j] = 0.02
			in.RefSinkCost[i][j] = 0.5
		}
	}
	for j := 0; j < 4; j++ {
		in.Commodity[j] = j % 2
		in.Threshold[j] = 0.99
	}
	return in
}

func TestValidateOK(t *testing.T) {
	if err := tinyInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	cases := []func(*Instance){
		func(in *Instance) { in.ReflectorCost = in.ReflectorCost[:1] },
		func(in *Instance) { in.Fanout[0] = -1 },
		func(in *Instance) { in.SrcRefLoss[0][0] = 1.5 },
		func(in *Instance) { in.RefSinkLoss[1][2] = -0.1 },
		func(in *Instance) { in.Commodity[0] = 9 },
		func(in *Instance) { in.Threshold[0] = 1.0 },
		func(in *Instance) { in.Threshold[1] = -0.2 },
		func(in *Instance) { in.SrcRefCost[0][0] = math.NaN() },
		func(in *Instance) { in.Color = []int{0, 1, 0}; in.NumColors = 0 },
		func(in *Instance) { in.Color = []int{0, 5, 0}; in.NumColors = 2 },
		func(in *Instance) { in.Bandwidth = []float64{1, 0} },
	}
	for idx, mutate := range cases {
		in := tinyInstance()
		mutate(in)
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", idx)
		}
	}
}

func TestPathFailureFormula(t *testing.T) {
	in := tinyInstance()
	// p_ki + p_ij - p_ki p_ij for sink 0 (commodity 0) via reflector 1.
	want := 0.01 + 0.02 - 0.01*0.02
	if got := in.PathFailure(1, 0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("PathFailure = %v, want %v", got, want)
	}
}

func TestWeightIsNegLog(t *testing.T) {
	in := tinyInstance()
	pf := in.PathFailure(0, 0)
	if got := in.Weight(0, 0); math.Abs(got-(-math.Log(pf))) > 1e-12 {
		t.Fatalf("Weight = %v, want %v", got, -math.Log(pf))
	}
	// Demand: -log(1-Φ).
	if got := in.Demand(0); math.Abs(got-(-math.Log(1-0.99))) > 1e-12 {
		t.Fatalf("Demand = %v", got)
	}
}

func TestWeightClampAtExtremes(t *testing.T) {
	in := tinyInstance()
	in.SrcRefLoss[0][0] = 0
	in.RefSinkLoss[0][0] = 0
	w := in.Weight(0, 0)
	if math.IsInf(w, 1) || math.IsNaN(w) {
		t.Fatalf("weight must stay finite at zero loss, got %v", w)
	}
	in.SrcRefLoss[0][0] = 1
	w = in.Weight(0, 0)
	if w < 0 || math.IsNaN(w) {
		t.Fatalf("weight must stay ≥ 0 at total loss, got %v", w)
	}
}

// Property: a two-hop path's failure probability is always at least each
// hop's own loss, and at most their sum.
func TestPathFailureBoundsQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65536
		p2 := float64(b) / 65536
		pf := p1 + p2 - p1*p2
		return pf >= math.Max(p1, p2)-1e-15 && pf <= p1+p2+1e-15 && pf <= 1+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDesignCostAndAudit(t *testing.T) {
	in := tinyInstance()
	d := NewDesign(in)
	d.Serve[0][0] = true
	d.Serve[1][0] = true
	d.Normalize(in)
	if !d.Build[0] || !d.Build[1] || !d.Ingest[0][0] {
		t.Fatal("Normalize must set ingest/build from serve")
	}
	// Cost: r0 + r1 + c(y00) + c(y01) + 2 arcs.
	want := 1.0 + 2 + 1 + 1 + 0.5 + 0.5
	if got := d.Cost(in); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
	a := AuditDesign(in, d)
	if !a.StructureOK {
		t.Fatal("structure must hold after Normalize")
	}
	// Sink 0: two copies, each weight -log(0.0298); demand -log(0.01).
	wantW := 2 * -math.Log(0.01+0.02-0.01*0.02) / -math.Log(0.01)
	if wantW > 1 {
		wantW = 2 * 1 // capped weights: each min(w, W)=W... not here since w<W
	}
	_ = wantW
	if a.WorstSink == 0 {
		t.Fatal("sink 0 is served; some unserved sink must be worst")
	}
	if a.WeightFactor != 0 {
		t.Fatalf("unserved demanding sinks give factor 0, got %v", a.WeightFactor)
	}
}

func TestSinkFailureProbProduct(t *testing.T) {
	in := tinyInstance()
	d := NewDesign(in)
	d.Serve[0][0] = true
	d.Serve[2][0] = true
	d.Normalize(in)
	want := in.PathFailure(0, 0) * in.PathFailure(2, 0)
	if got := d.SinkFailureProb(in, 0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("failure = %v, want %v", got, want)
	}
	if got := d.SinkFailureProb(in, 1); got != 1 {
		t.Fatalf("unserved sink failure = %v, want 1", got)
	}
}

func TestAuditColorExcess(t *testing.T) {
	in := tinyInstance()
	in.Color = []int{0, 0, 1}
	in.NumColors = 2
	d := NewDesign(in)
	d.Serve[0][0] = true
	d.Serve[1][0] = true // same color serving same sink twice
	d.Normalize(in)
	a := AuditDesign(in, d)
	if a.ColorExcess != 1 {
		t.Fatalf("ColorExcess = %d, want 1", a.ColorExcess)
	}
}

func TestAuditFanout(t *testing.T) {
	in := tinyInstance()
	d := NewDesign(in)
	for j := 0; j < 4; j++ {
		d.Serve[0][j] = true // fanout 4 vs F=2
	}
	d.Normalize(in)
	a := AuditDesign(in, d)
	if math.Abs(a.FanoutFactor-2) > 1e-12 {
		t.Fatalf("FanoutFactor = %v, want 2", a.FanoutFactor)
	}
	if a.WorstReflector != 0 {
		t.Fatalf("WorstReflector = %d", a.WorstReflector)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := tinyInstance()
	in.Color = []int{0, 1, 0}
	in.NumColors = 2
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSinks != in.NumSinks || back.SrcRefLoss[1][2] != in.SrcRefLoss[1][2] || back.Color[1] != 1 {
		t.Fatal("round trip mismatch")
	}
}

func TestDesignJSONRoundTrip(t *testing.T) {
	in := tinyInstance()
	d := NewDesign(in)
	d.Serve[1][2] = true
	d.Normalize(in)
	var buf bytes.Buffer
	if err := WriteDesignJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDesignJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Serve[1][2] || !back.Build[1] {
		t.Fatal("design round trip mismatch")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := tinyInstance()
	cp := in.Clone()
	cp.SrcRefLoss[0][0] = 0.5
	cp.Commodity[0] = 1
	if in.SrcRefLoss[0][0] == 0.5 || in.Commodity[0] == 1 {
		t.Fatal("Clone must deep-copy")
	}
	d := NewDesign(in)
	d.Serve[0][0] = true
	dc := d.Clone()
	dc.Serve[0][0] = false
	if !d.Serve[0][0] {
		t.Fatal("Design.Clone must deep-copy")
	}
}

func TestCappedWeight(t *testing.T) {
	in := tinyInstance()
	// Make one path nearly lossless: weight huge, must cap at demand.
	in.SrcRefLoss[0][0] = 1e-12
	in.RefSinkLoss[0][0] = 1e-12
	if in.CappedWeight(0, 0) > in.Demand(0)+1e-12 {
		t.Fatal("capped weight exceeded demand")
	}
}

func TestSinksOfCommodity(t *testing.T) {
	in := tinyInstance()
	byK := in.SinksOfCommodity()
	if len(byK) != 2 || len(byK[0]) != 2 || len(byK[1]) != 2 {
		t.Fatalf("SinksOfCommodity = %v", byK)
	}
}

func TestArcAllowedEdgeCap(t *testing.T) {
	in := tinyInstance()
	if !in.ArcAllowed(0, 0) {
		t.Fatal("uncapacitated arcs are allowed")
	}
	in.EdgeCap = [][]float64{{0, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}}
	if in.ArcAllowed(0, 0) {
		t.Fatal("zero-capacity arc must be disallowed")
	}
	if !in.ArcAllowed(1, 0) {
		t.Fatal("capacity-1 arc must be allowed")
	}
}

func TestIngestCapValidation(t *testing.T) {
	in := tinyInstance()
	in.IngestCap = []float64{1, 1} // wrong length
	if err := in.Validate(); err == nil {
		t.Fatal("expected length error")
	}
	in.IngestCap = []float64{1, -1, 2}
	if err := in.Validate(); err == nil {
		t.Fatal("expected negative-cap error")
	}
	in.IngestCap = []float64{1, 1, 2}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestExcessAudit(t *testing.T) {
	in := tinyInstance()
	in.IngestCap = []float64{1, 5, 5}
	d := NewDesign(in)
	// Reflector 0 ingests both streams: excess 1 over cap 1.
	d.Serve[0][0] = true // commodity 0
	d.Serve[0][1] = true // commodity 1
	d.Normalize(in)
	a := AuditDesign(in, d)
	if a.IngestExcess != 1 {
		t.Fatalf("IngestExcess = %v, want 1", a.IngestExcess)
	}
}

func TestIngestCapClone(t *testing.T) {
	in := tinyInstance()
	in.IngestCap = []float64{1, 2, 3}
	cp := in.Clone()
	cp.IngestCap[0] = 9
	if in.IngestCap[0] == 9 {
		t.Fatal("Clone must deep-copy IngestCap")
	}
}
