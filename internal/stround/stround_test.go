package stround

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/round"
)

func roundedXBar(t *testing.T, in *netmodel.Instance, seed uint64) [][]float64 {
	t.Helper()
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := round.Apply(in, fs, round.DefaultOptions(seed))
	return r.XBar
}

func TestColorConstraintsRespectedWithinSlack(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 4), 7)
	xbar := roundedXBar(t, in, 3)
	res, err := Round(in, xbar, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxColorExcess > 7 {
		t.Fatalf("color excess %d above additive bound 7", res.MaxColorExcess)
	}
	if res.MaxFanoutExcess > 7 {
		t.Fatalf("fanout excess %v above additive bound 7", res.MaxFanoutExcess)
	}
	if res.FracCost > 0 && res.FinalCost > 14*res.FracCost {
		t.Fatalf("cost %v above 14×%v", res.FinalCost, res.FracCost)
	}
}

func TestBoxCoverage(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 4), 11)
	xbar := roundedXBar(t, in, 9)
	res, err := Round(in, xbar, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBoxes == 0 {
		t.Fatal("expected boxes")
	}
	// The path LP should cover nearly all boxes on a feasible instance.
	if res.ServedBoxes < res.TotalBoxes*9/10 {
		t.Fatalf("served %d/%d boxes", res.ServedBoxes, res.TotalBoxes)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(1, 2, 2, 3), 2)
	xbar := roundedXBar(t, in, 4)
	a, err := Round(in, xbar, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Round(in, xbar, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalCost != b.FinalCost || a.ServedBoxes != b.ServedBoxes {
		t.Fatal("same seed must give same rounding")
	}
}

func TestEdgeCapsRespectedFractionally(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 6), 3)
	in.EdgeCap = make([][]float64, in.NumReflectors)
	for i := range in.EdgeCap {
		in.EdgeCap[i] = make([]float64, in.NumSinks)
		for j := range in.EdgeCap[i] {
			in.EdgeCap[i][j] = 1
		}
	}
	// Forbid one arc entirely.
	in.EdgeCap[0][0] = 0
	xbar := roundedXBar(t, in, 6)
	res, err := Round(in, xbar, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Serve[0][0] {
		t.Fatal("zero-capacity arc used")
	}
}

func TestEmptyXBar(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 2, 3), 1)
	xbar := make([][]float64, in.NumReflectors)
	for i := range xbar {
		xbar[i] = make([]float64, in.NumSinks)
	}
	res, err := Round(in, xbar, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBoxes != 0 {
		t.Fatal("no x̄ ⇒ no boxes")
	}
}

// TestWeightGuaranteeEndToEnd: the §6.5 path also inherits the §5 weight
// bound (each served box contributes its interval's weight): audit at the
// design level.
func TestWeightGuaranteeEndToEnd(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 4), seed)
		xbar := roundedXBar(t, in, seed*13)
		res, err := Round(in, xbar, DefaultOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		d := netmodel.NewDesign(in)
		for i := range res.Serve {
			copy(d.Serve[i], res.Serve[i])
		}
		d.Normalize(in)
		a := netmodel.AuditDesign(in, d)
		if a.WeightFactor < 0.25-1e-9 && res.ServedBoxes == res.TotalBoxes {
			t.Errorf("seed %d: weight factor %.4f < 1/4 with all boxes served", seed, a.WeightFactor)
		}
	}
}
