// Package stround implements the §6.5 rounding used for the extensions of
// the paper: capacities between reflectors and sinks (§6.3) and color
// constraints (§6.4). Plain network-flow integrality fails once "entangled
// set" constraints couple edges (the paper's Figure 3 gap), so the final
// stage is reformulated as a *path LP* over the Figure-2 network and rounded
// with dependent randomized rounding in the spirit of Srinivasan–Teo
// (Theorem 2.2 of [28]): the paper needs only the existence of an integral
// solution with cost ≤ 14X and additive constraint violation ≤ 7, and this
// package certifies exactly those bounds on every run (retrying the
// randomness when a rare tail event exceeds them, and surfacing the realized
// violations in the result).
//
// Because every s→box path in the Figure-2 network is fully determined by a
// ((reflector, sink) pair, box) choice, the path LP collapses to variables
//
//	g[p,b] = flow carried by pair p into box b of p's sink
//
// with box-demand rows (ii), pair/fanout/color capacity rows (i)+(iii), and
// the cost control (iv). The dependent rounding picks at most one incoming
// path per box with probability equal to the doubled fractional flow, which
// satisfies rows (ii) with equality whenever the fractional flow covered the
// box — the same structural property Srinivasan–Teo's rounding guarantees.
package stround

import (
	"fmt"

	"repro/internal/gapflow"
	"repro/internal/lp"
	"repro/internal/netmodel"
	"repro/internal/stats"
)

// Options configures the path rounding.
type Options struct {
	Seed uint64
	// MaxRetries bounds re-randomization when the audited bounds fail.
	// Default 32.
	MaxRetries int
	// CostFactor is the certified cost bound versus the fractional
	// stage cost X (paper: 14). Default 14.
	CostFactor float64
	// AdditiveSlack is the certified additive violation bound on fanout
	// and color constraints (paper: 7). Default 7.
	AdditiveSlack float64
}

// DefaultOptions returns the paper's §6.5 constants.
func DefaultOptions(seed uint64) Options {
	return Options{Seed: seed, MaxRetries: 32, CostFactor: 14, AdditiveSlack: 7}
}

// Result is the outcome of the path rounding.
type Result struct {
	Serve [][]bool
	// TotalBoxes and ServedBoxes: a box can be unserved only when the
	// fractional path LP could not cover it (capacity-infeasible).
	TotalBoxes, ServedBoxes int
	// FracCost is the path-LP fractional optimum; FinalCost the cost of
	// the x-part of the rounded solution.
	FracCost, FinalCost float64
	// MaxFanoutExcess and MaxColorExcess are the realized additive
	// violations (against F_i, and against the per-(color,sink) cap 1).
	MaxFanoutExcess float64
	MaxColorExcess  int
	Retries         int
}

type pairRec struct {
	refl, sink int
	w          float64
}

type boxRec struct {
	sink   int
	lo, hi float64
}

type pathVar struct {
	pair, box int
}

// Round runs the §6.5 stage on the fractional x̄ from the §3 rounding.
func Round(in *netmodel.Instance, xbar [][]float64, opts Options) (*Result, error) {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 32
	}
	if opts.CostFactor == 0 {
		opts.CostFactor = 14
	}
	if opts.AdditiveSlack == 0 {
		opts.AdditiveSlack = 7
	}
	_, R, D := in.Dims()

	// --- Level-3 pairs and level-4 boxes of the Figure-2 network. ---
	var pairs []pairRec
	pairsOfSink := make([][]int, D)
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if xbar[i][j] > 1e-12 {
				pairsOfSink[j] = append(pairsOfSink[j], len(pairs))
				pairs = append(pairs, pairRec{refl: i, sink: j, w: in.CappedWeight(i, j)})
			}
		}
	}
	var boxes []boxRec
	for j := 0; j < D; j++ {
		ws := make([]float64, 0, len(pairsOfSink[j]))
		xs := make([]float64, 0, len(pairsOfSink[j]))
		for _, pIdx := range pairsOfSink[j] {
			ws = append(ws, pairs[pIdx].w)
			xs = append(xs, xbar[pairs[pIdx].refl][j])
		}
		for _, b := range gapflow.BoxesForSink(ws, xs, j) {
			boxes = append(boxes, boxRec{sink: j, lo: b.Lo, hi: b.Hi})
		}
	}

	res0 := &Result{TotalBoxes: len(boxes), Serve: emptyServe(R, D)}
	if len(boxes) == 0 {
		return res0, nil
	}

	// --- Path variables g[p,b] for weight-compatible (pair, box). ---
	var vars []pathVar
	varsOfBox := make([][]int, len(boxes))
	varsOfPair := make([][]int, len(pairs))
	for b, bx := range boxes {
		for _, pIdx := range pairsOfSink[bx.sink] {
			p := pairs[pIdx]
			if p.w >= bx.lo-1e-12 && p.w <= bx.hi+1e-12 {
				vid := len(vars)
				vars = append(vars, pathVar{pair: pIdx, box: b})
				varsOfBox[b] = append(varsOfBox[b], vid)
				varsOfPair[pIdx] = append(varsOfPair[pIdx], vid)
			}
		}
	}

	build := func() *lp.Problem {
		p := lp.NewProblem(len(vars))
		for vid := range vars {
			p.SetBounds(vid, 0, 0.5) // pair→box edge capacity 1/2
		}
		// (ii) box demand rows: Σ g ≤ 1/2 (stage 1 maximizes coverage).
		for b := range boxes {
			coefs := make([]lp.Coef, 0, len(varsOfBox[b]))
			for _, vid := range varsOfBox[b] {
				coefs = append(coefs, lp.Coef{Var: vid, Val: 1})
			}
			p.AddConstraint(lp.LE, 0.5, coefs...)
		}
		// (i) pair capacity: level-3 node cap 1, tightened by §6.3
		// edge caps u_ij when present.
		for pIdx, pr := range pairs {
			capv := 1.0
			if in.EdgeCap != nil && in.EdgeCap[pr.refl][pr.sink] < capv {
				capv = in.EdgeCap[pr.refl][pr.sink]
			}
			if len(varsOfPair[pIdx]) == 0 {
				continue
			}
			coefs := make([]lp.Coef, 0, len(varsOfPair[pIdx]))
			for _, vid := range varsOfPair[pIdx] {
				coefs = append(coefs, lp.Coef{Var: vid, Val: 1})
			}
			p.AddConstraint(lp.LE, capv, coefs...)
		}
		// (i) fanout rows: bandwidth-weighted use of reflector i ≤ F_i.
		perRefl := make([][]lp.Coef, R)
		for pIdx, pr := range pairs {
			bw := in.UnitLoad(pr.sink)
			for _, vid := range varsOfPair[pIdx] {
				perRefl[pr.refl] = append(perRefl[pr.refl], lp.Coef{Var: vid, Val: bw})
			}
		}
		for i := 0; i < R; i++ {
			if len(perRefl[i]) > 0 {
				p.AddConstraint(lp.LE, in.Fanout[i], perRefl[i]...)
			}
		}
		// (iii) entangled sets: per (color, sink) cap 1 (§6.4).
		if in.Color != nil {
			for j := 0; j < D; j++ {
				perColor := make([][]lp.Coef, in.NumColors)
				for _, pIdx := range pairsOfSink[j] {
					c := in.Color[pairs[pIdx].refl]
					for _, vid := range varsOfPair[pIdx] {
						perColor[c] = append(perColor[c], lp.Coef{Var: vid, Val: 1})
					}
				}
				for _, coefs := range perColor {
					if len(coefs) > 1 {
						p.AddConstraint(lp.LE, 1, coefs...)
					}
				}
			}
		}
		return p
	}

	// Stage 1: maximize covered box mass under the true capacities.
	p1 := build()
	for vid := range vars {
		p1.SetObjectiveCoef(vid, -1)
	}
	sol1, err := p1.Solve()
	if err != nil {
		return nil, err
	}
	if sol1.Status != lp.Optimal {
		return nil, fmt.Errorf("stround: stage-1 LP status %v", sol1.Status)
	}
	coverage := -sol1.Objective

	// Stage 2: among maximum-coverage flows, minimize cost.
	p2 := build()
	for vid, v := range vars {
		pr := pairs[v.pair]
		p2.SetObjectiveCoef(vid, in.RefSinkCost[pr.refl][pr.sink])
	}
	covRow := make([]lp.Coef, len(vars))
	for vid := range vars {
		covRow[vid] = lp.Coef{Var: vid, Val: 1}
	}
	p2.AddConstraint(lp.GE, coverage-1e-7, covRow...)
	sol2, err := p2.Solve()
	if err != nil {
		return nil, err
	}
	if sol2.Status != lp.Optimal {
		return nil, fmt.Errorf("stround: stage-2 LP status %v", sol2.Status)
	}
	g := sol2.X
	fracCost := sol2.Objective

	// §6.5 preprocessing: eliminate paths costing more than 4X before
	// rounding (they alone would blow the cost bound).
	if fracCost > 0 {
		for vid, v := range vars {
			pr := pairs[v.pair]
			if g[vid] > 0 && in.RefSinkCost[pr.refl][pr.sink] > 4*fracCost {
				g[vid] = 0
			}
		}
	}

	// Dependent rounding with audit-and-retry.
	rng := stats.NewRNG(opts.Seed)
	var best *Result
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		res := sampleOnce(in, pairs, boxes, vars, varsOfBox, g, rng)
		res.FracCost = fracCost
		res.Retries = attempt
		if best == nil || better(res, best) {
			best = res
		}
		okCost := fracCost <= 0 || res.FinalCost <= opts.CostFactor*fracCost
		if okCost && res.MaxFanoutExcess <= opts.AdditiveSlack && float64(res.MaxColorExcess) <= opts.AdditiveSlack {
			return res, nil
		}
	}
	return best, nil
}

func emptyServe(r, d int) [][]bool {
	s := make([][]bool, r)
	for i := range s {
		s[i] = make([]bool, d)
	}
	return s
}

func better(a, b *Result) bool {
	if a.ServedBoxes != b.ServedBoxes {
		return a.ServedBoxes > b.ServedBoxes
	}
	av := a.MaxFanoutExcess + float64(a.MaxColorExcess)
	bv := b.MaxFanoutExcess + float64(b.MaxColorExcess)
	if av != bv {
		return av < bv
	}
	return a.FinalCost < b.FinalCost
}

func sampleOnce(in *netmodel.Instance, pairs []pairRec, boxes []boxRec, vars []pathVar, varsOfBox [][]int, g []float64, rng *stats.RNG) *Result {
	_, R, D := in.Dims()
	res := &Result{TotalBoxes: len(boxes), Serve: emptyServe(R, D)}
	for b := range boxes {
		// Doubled flows 2g form a (sub-)distribution over incoming paths.
		u := rng.Float64()
		acc := 0.0
		chosen := -1
		for _, vid := range varsOfBox[b] {
			acc += 2 * g[vid]
			if u < acc {
				chosen = vid
				break
			}
		}
		if chosen < 0 {
			continue // box unserved: fractional coverage was < 1/2
		}
		p := pairs[vars[chosen].pair]
		res.Serve[p.refl][p.sink] = true
		res.ServedBoxes++
	}
	// Audit the realized violations.
	for i := 0; i < R; i++ {
		use := 0.0
		for j := 0; j < D; j++ {
			if res.Serve[i][j] {
				use += in.UnitLoad(j)
				res.FinalCost += in.RefSinkCost[i][j]
			}
		}
		if ex := use - in.Fanout[i]; ex > res.MaxFanoutExcess {
			res.MaxFanoutExcess = ex
		}
	}
	if in.Color != nil {
		for j := 0; j < D; j++ {
			counts := make([]int, in.NumColors)
			for i := 0; i < R; i++ {
				if res.Serve[i][j] {
					counts[in.Color[i]]++
				}
			}
			for _, c := range counts {
				if c-1 > res.MaxColorExcess {
					res.MaxColorExcess = c - 1
				}
			}
		}
	}
	return res
}
