// Command overlaysolve runs the paper's approximation algorithm on an
// instance JSON file, prints the audit, and optionally writes the design.
//
// Usage:
//
//	overlaysolve -in instance.json [-o design.json] [-seed 1] [-c 64]
//	             [-greedy] [-exact] [-lp-only]
//
// -greedy and -exact run the baseline / exact IP solver instead of the
// LP-rounding algorithm (exact is exponential: tiny instances only).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/netmodel"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required)")
		outPath = flag.String("o", "", "write the design JSON here")
		seed    = flag.Uint64("seed", 1, "randomized-rounding seed")
		c       = flag.Float64("c", 64, "rounding constant c (§3; 64 ⇒ δ=1/4)")
		useG    = flag.Bool("greedy", false, "run the greedy baseline instead")
		useX    = flag.Bool("exact", false, "run exact branch-and-bound instead (tiny instances!)")
		lpOnly  = flag.Bool("lp-only", false, "solve the LP relaxation only")
		repair  = flag.Bool("repair", false, "top coverage up to full demand after rounding (§7 heuristic)")
		prior   = flag.String("prior", "", "prior design JSON for churn-aware re-solve (§1.3)")
		sticky  = flag.Float64("stickiness", 0.5, "cost discount on prior arcs during re-solve, in [0,1)")
	)
	flag.Parse()
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "overlaysolve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	in, err := netmodel.LoadFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("instance %s: |S|=%d |R|=%d |D|=%d colors=%d\n",
		in.Name, in.NumSources, in.NumReflectors, in.NumSinks, in.NumColors)

	var design *netmodel.Design
	start := time.Now()
	switch {
	case *useG:
		g := greedy.Greedy(in)
		design = g.Design
		fmt.Printf("greedy: covered %d/%d sinks in %v\n", g.Covered, g.Demanding, time.Since(start).Round(time.Millisecond))
	case *useX:
		res, err := bnb.Solve(in, bnb.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		if res.Design == nil {
			fmt.Fprintln(os.Stderr, "overlaysolve: no feasible integral design found")
			os.Exit(1)
		}
		design = res.Design
		fmt.Printf("exact IP: cost %.4f (optimal=%v, %d nodes) in %v\n",
			res.Cost, res.Optimal, res.Nodes, time.Since(start).Round(time.Millisecond))
	default:
		opts := core.DefaultOptions(*seed)
		opts.C = *c
		opts.LPOnly = *lpOnly
		opts.RepairCoverage = *repair
		var res *core.Result
		if *prior != "" {
			pf, err := os.Open(*prior)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			priorDesign, err := netmodel.ReadDesignJSON(pf)
			pf.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			re, err := core.Reoptimize(in, priorDesign, *sticky, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("churn-aware re-solve: %d service arcs changed, %d reflectors flipped\n",
				re.ArcChurn, re.ReflectorChurn)
			res = re.Result
		} else {
			res, err = core.Solve(in, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("LP relaxation: cost %.4f, %d vars, %d rows, %d pivots, %v\n",
			res.LPCost, res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots, res.Timings.LP.Round(time.Microsecond))
		if *lpOnly {
			return
		}
		design = res.Design
		fmt.Printf("algorithm: %s rounding, %d retries\n", map[bool]string{true: "§6.5 path", false: "§5 GAP"}[res.PathRounding], res.Retries)
		fmt.Printf("cost ratio vs LP bound: %.3f\n", res.ApproxRatio())
	}

	audit := netmodel.AuditDesign(in, design)
	fmt.Printf("audit: %v\n", audit)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := netmodel.WriteDesignJSON(f, design); err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote design to %s\n", *outPath)
	}
}
