// Command overlaysolve runs the paper's approximation algorithm on an
// instance JSON file, prints the audit, and optionally writes the design.
//
// Usage:
//
//	overlaysolve -in instance.json [-o design.json] [-seed 1] [-c 64]
//	             [-greedy] [-exact] [-lp-only] [-shards 8] [-shard-levels 2]
//	             [-json report.json] [-pricing devex|dantzig|partial]
//	             [-refactor-every N]
//
// -greedy and -exact run the baseline / exact IP solver instead of the
// LP-rounding algorithm (exact is exponential: tiny instances only).
// -shards ≥ 2 solves one LP per commodity-region shard in parallel with a
// capacity-coordination pass instead of the monolithic LP — the scaling
// path for thousands of sinks. -json writes a machine-readable report
// (per-stage timings, audit, shard counters) next to the human output;
// -trace writes the hierarchical solve trace (pipeline stages, per-shard
// solves, simplex refactorization/adoption/devex events) as JSONL.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/agg"
	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/lp"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// parsePricing maps the -pricing flag to the solver's pricing rules.
func parsePricing(s string) (lp.Pricing, error) {
	switch s {
	case "devex":
		return lp.DevexPricing, nil
	case "dantzig":
		return lp.DantzigPricing, nil
	case "partial":
		return lp.PartialPricing, nil
	}
	return 0, fmt.Errorf("unknown pricing %q (want devex|dantzig|partial)", s)
}

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required)")
		outPath = flag.String("o", "", "write the design JSON here")
		seed    = flag.Uint64("seed", 1, "randomized-rounding seed")
		c       = flag.Float64("c", 64, "rounding constant c (§3; 64 ⇒ δ=1/4)")
		useG    = flag.Bool("greedy", false, "run the greedy baseline instead")
		useX    = flag.Bool("exact", false, "run exact branch-and-bound instead (tiny instances!)")
		lpOnly  = flag.Bool("lp-only", false, "solve the LP relaxation only")
		repair  = flag.Bool("repair", false, "top coverage up to full demand after rounding (§7 heuristic)")
		prior   = flag.String("prior", "", "prior design JSON for churn-aware re-solve (§1.3)")
		sticky  = flag.Float64("stickiness", 0.5, "cost discount on prior arcs during re-solve, in [0,1)")
		shards  = flag.Int("shards", 0, "≥2: solve one LP per commodity-region shard in parallel (internal/shard)")
		levels  = flag.Int("shard-levels", 0, "2: fold shards into super-shards and clear capacity with the hierarchical dual-price exchange")
		aggr    = flag.Bool("aggregate", false, "fold viewers into weighted super-sinks before the LP and disaggregate after (internal/agg)")
		aggColo = flag.Int("agg-colo", 0, "≥2: group aggregates by cost-anchor COLO of this many reflectors instead of per reflector (caps the fold at R/N labels; needs -aggregate)")
		jsonOut = flag.String("json", "", "write a machine-readable solve report (stages, audit, shard counters) here")
		stages  = flag.Bool("stages", false, "print the per-stage pipeline instrumentation (lp-build/lp-patch/lp-solve/... wall and run counts)")
		pricing = flag.String("pricing", "devex", "simplex pricing rule: devex|dantzig|partial")
		refEv   = flag.Int("refactor-every", 0, "basis refactorization cadence in pivots (0 = auto: 16+2√rows)")
		trace   = flag.String("trace", "", "write the hierarchical solve trace (stages, shards, simplex events) as JSONL to this file")
	)
	flag.Parse()
	pr, err := parsePricing(*pricing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
		os.Exit(2)
	}
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "overlaysolve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut != "" && (*useG || *useX || *lpOnly) {
		fmt.Fprintln(os.Stderr, "overlaysolve: -json requires a full LP-rounding solve (not -greedy/-exact/-lp-only)")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "overlaysolve: -shards %d is negative (want 0, or ≥ 2 to shard)\n", *shards)
		os.Exit(2)
	}
	if *levels < 0 || *levels > 2 {
		fmt.Fprintf(os.Stderr, "overlaysolve: -shard-levels %d out of range (want 0/1 = flat coordination, 2 = hierarchical exchange)\n", *levels)
		os.Exit(2)
	}
	if *levels >= 2 && *shards < 2 {
		fmt.Fprintln(os.Stderr, "overlaysolve: -shard-levels 2 requires -shards ≥ 2")
		os.Exit(2)
	}
	if *refEv < 0 {
		fmt.Fprintf(os.Stderr, "overlaysolve: -refactor-every %d is negative (want 0 = auto, or a pivot cadence)\n", *refEv)
		os.Exit(2)
	}
	if *aggr && (*useG || *useX) {
		fmt.Fprintln(os.Stderr, "overlaysolve: -aggregate requires the LP pipeline (not -greedy/-exact)")
		os.Exit(2)
	}
	if *aggColo < 0 || *aggColo == 1 {
		fmt.Fprintf(os.Stderr, "overlaysolve: -agg-colo %d out of range (want 0 = per-reflector anchors, or ≥ 2 reflectors per colo)\n", *aggColo)
		os.Exit(2)
	}
	if *aggColo >= 2 && !*aggr {
		fmt.Fprintln(os.Stderr, "overlaysolve: -agg-colo requires -aggregate")
		os.Exit(2)
	}
	if *trace != "" && (*useG || *useX) {
		fmt.Fprintln(os.Stderr, "overlaysolve: -trace requires the LP pipeline (not -greedy/-exact)")
		os.Exit(2)
	}
	in, err := netmodel.LoadFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("instance %s: |S|=%d |R|=%d |D|=%d colors=%d\n",
		in.Name, in.NumSources, in.NumReflectors, in.NumSinks, in.NumColors)

	var design *netmodel.Design
	var solveRes *core.Result
	start := time.Now()
	switch {
	case *useG:
		g := greedy.Greedy(in)
		design = g.Design
		fmt.Printf("greedy: covered %d/%d sinks in %v\n", g.Covered, g.Demanding, time.Since(start).Round(time.Millisecond))
	case *useX:
		res, err := bnb.Solve(in, bnb.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		if res.Design == nil {
			fmt.Fprintln(os.Stderr, "overlaysolve: no feasible integral design found")
			os.Exit(1)
		}
		design = res.Design
		fmt.Printf("exact IP: cost %.4f (optimal=%v, %d nodes) in %v\n",
			res.Cost, res.Optimal, res.Nodes, time.Since(start).Round(time.Millisecond))
	default:
		opts := core.DefaultOptions(*seed)
		opts.C = *c
		opts.LPOnly = *lpOnly
		opts.RepairCoverage = *repair
		opts.Shards = *shards
		opts.ShardLevels = *levels
		if *aggr {
			opts.Aggregate = &agg.Config{}
			if *aggColo >= 2 {
				opts.Aggregate.GroupOf = agg.ColoGroups(in, *aggColo)
			}
		}
		opts.Pricing = pr
		opts.RefactorEvery = *refEv
		// A trace-only observer: spans for every pipeline stage, per-shard
		// solve, and simplex event, with no metrics registry attached.
		var tracer *obs.Tracer
		if *trace != "" {
			tf, terr := os.Create(*trace)
			if terr != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", terr)
				os.Exit(1)
			}
			defer tf.Close()
			tracer = obs.NewTracer(tf)
			opts.Obs = &obs.Observer{Tr: tracer}
		}
		var res *core.Result
		if *prior != "" {
			pf, err := os.Open(*prior)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			priorDesign, err := netmodel.ReadDesignJSON(pf)
			pf.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			re, err := core.Reoptimize(in, priorDesign, *sticky, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("churn-aware re-solve: %d service arcs changed, %d reflectors flipped\n",
				re.ArcChurn, re.ReflectorChurn)
			res = re.Result
		} else {
			res, err = core.Solve(in, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
				os.Exit(1)
			}
		}
		solveRes = res
		if tracer != nil {
			if terr := tracer.Err(); terr != nil {
				fmt.Fprintf(os.Stderr, "overlaysolve: trace: %v\n", terr)
				os.Exit(1)
			}
			fmt.Printf("wrote solve trace to %s\n", *trace)
		}
		if si := res.ShardInfo; si != nil {
			fmt.Printf("sharded solve: %d shards, %d coordination rounds, %d re-solves, %d builds consolidated\n",
				si.Shards, si.Rounds, si.Resolves, si.ConsolidatedBuilds)
			if si.Levels >= 2 {
				fmt.Printf("hierarchical exchange: %d levels, %d clearing rounds, %d contested reflectors, final gap %.4f\n",
					si.Levels, si.ExchangeRounds, si.ContestedReflectors, si.ExchangeGap)
			}
			fmt.Printf("shard LPs: Σcost %.4f, Σ%d vars, Σ%d rows, Σ%d pivots, %v\n",
				res.LPCost, res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots, res.Timings.LP.Round(time.Microsecond))
		} else {
			fmt.Printf("LP relaxation: cost %.4f, %d vars, %d rows, %d pivots, %v\n",
				res.LPCost, res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots, res.Timings.LP.Round(time.Microsecond))
		}
		if *lpOnly {
			return
		}
		design = res.Design
		fmt.Printf("algorithm: %s rounding, %d retries\n", map[bool]string{true: "§6.5 path", false: "§5 GAP"}[res.PathRounding], res.Retries)
		if res.ShardInfo == nil {
			fmt.Printf("cost ratio vs LP bound: %.3f\n", res.ApproxRatio())
		}
	}

	audit := netmodel.AuditDesign(in, design)
	fmt.Printf("audit: %v\n", audit)
	if *stages && solveRes != nil {
		fmt.Println("pipeline stages:")
		for _, s := range solveRes.Stages {
			fmt.Printf("  %-18s %12s %4d run(s)\n", s.Name, s.Wall.Round(time.Microsecond), s.Runs)
		}
	}
	if *jsonOut != "" && solveRes != nil {
		if err := writeReport(*jsonOut, in, solveRes, audit); err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote solve report to %s\n", *jsonOut)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := netmodel.WriteDesignJSON(f, design); err != nil {
			fmt.Fprintf(os.Stderr, "overlaysolve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote design to %s\n", *outPath)
	}
}

// solveReport is the -json schema: instance identity, audit verdict,
// per-stage pipeline instrumentation, and (for sharded runs) the shard
// counters. The CI smoke run checks the stage names of a -shards solve
// against this schema.
type solveReport struct {
	Instance string  `json:"instance"`
	Sinks    int     `json:"sinks"`
	Shards   int     `json:"shards"`
	Cost     float64 `json:"cost"`
	LPCost   float64 `json:"lp_cost"`
	Pivots   int     `json:"pivots"`
	Retries  int     `json:"retries"`
	AuditOK  bool    `json:"audit_ok"`
	Stages   []struct {
		Name   string `json:"name"`
		WallNS int64  `json:"wall_ns"`
		Runs   int    `json:"runs"`
	} `json:"stages"`
	ShardRounds         int     `json:"shard_rounds"`
	ShardResolves       int     `json:"shard_resolves"`
	ConsolidatedBuilds  int     `json:"consolidated_builds"`
	Fallback            bool    `json:"fallback"`
	ShardLevels         int     `json:"shard_levels,omitempty"`
	ExchangeRounds      int     `json:"shard_exchange_rounds,omitempty"`
	ContestedReflectors int     `json:"shard_contested_reflectors,omitempty"`
	ExchangeGap         float64 `json:"shard_exchange_gap,omitempty"`
}

func writeReport(path string, in *netmodel.Instance, res *core.Result, audit netmodel.Audit) error {
	rep := solveReport{
		Instance: in.Name,
		Sinks:    in.NumSinks,
		Cost:     audit.Cost,
		LPCost:   res.LPCost,
		Pivots:   res.Timings.LPPivots,
		Retries:  res.Retries,
		AuditOK:  res.AuditOK(),
	}
	if si := res.ShardInfo; si != nil {
		rep.Shards = si.Shards
		rep.ShardRounds = si.Rounds
		rep.ShardResolves = si.Resolves
		rep.ConsolidatedBuilds = si.ConsolidatedBuilds
		rep.Fallback = si.Fallback
		rep.ShardLevels = si.Levels
		rep.ExchangeRounds = si.ExchangeRounds
		rep.ContestedReflectors = si.ContestedReflectors
		rep.ExchangeGap = si.ExchangeGap
	}
	for _, s := range res.Stages {
		rep.Stages = append(rep.Stages, struct {
			Name   string `json:"name"`
			WallNS int64  `json:"wall_ns"`
			Runs   int    `json:"runs"`
		}{s.Name, s.Wall.Nanoseconds(), s.Runs})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
