// Command overlayd is the long-running provisioning daemon: it keeps an
// overlay multicast deployment continuously optimized while Deltas stream
// in over HTTP, the way §1.3's monitoring loop prescribes. Where
// overlaylive replays a fixed scenario to completion, overlayd runs an
// open-ended timeline — ingested deltas queue, a solver loop consumes them
// on a cadence (-interval) or as soon as queued churn crosses a pressure
// threshold (-pressure), and every published design keeps serving placement
// lookups lock-free while the next solve runs.
//
// Usage:
//
//	overlayd -listen :8080 -scenario clustered            # synthetic base
//	overlayd -listen :8080 -instance net.json             # instance file
//	overlayd -listen :8080 -snapshot state.json           # snapshot on SIGTERM
//	overlayd -listen :8080 -snapshot state.json -resume   # warm restart
//	overlayd -listen :8080 -interval 5s -pressure 32      # solve cadence
//
// API (all JSON; the internal/obs debug server mounts on the same
// listener):
//
//	POST /deltas      ingest one netmodel.Delta or a JSON array
//	GET  /placement   ?sink=S[&stream=K] — which reflectors feed the sink
//	GET  /design      the deployed design
//	GET  /status      control-plane state + last solve summary
//	POST /solve       force a re-optimization now
//	POST /snapshot    persist state to the -snapshot path
//	GET  /scenario    ingest history as a replayable scenario (overlaylive -replay)
//	GET  /metrics /healthz /slo /debug/vars /debug/pprof
//
// On SIGTERM/SIGINT the daemon writes a final snapshot (when -snapshot is
// set) and shuts the listener down gracefully. A restart with -resume picks
// the snapshot up and continues warm: same step counter, same deployed
// design, the persisted simplex basis adopted by the first post-restart
// solve instead of a cold refactorization. Everything is deterministic in
// the ingest history except wall-clock fields.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/daemon"
	"repro/internal/live"
	"repro/internal/lp"
	"repro/internal/netmodel"
)

func parsePricing(s string) (lp.Pricing, error) {
	switch s {
	case "devex":
		return lp.DevexPricing, nil
	case "dantzig":
		return lp.DantzigPricing, nil
	case "partial":
		return lp.PartialPricing, nil
	}
	return 0, fmt.Errorf("unknown pricing %q (want devex|dantzig|partial)", s)
}

func main() {
	var (
		listen     = flag.String("listen", ":8080", "serve the HTTP API on this address")
		instPath   = flag.String("instance", "", "boot from this netmodel instance JSON file")
		scenario   = flag.String("scenario", "", "boot from this scenario's base instance instead of -instance: "+strings.Join(live.Names(), "|"))
		seed       = flag.Uint64("seed", 1, "solver seed (and -scenario topology seed)")
		stickiness = flag.Float64("stickiness", 0.4, "deployed-design cost discount, in [0,1); 0 disables stickiness")
		warm       = flag.Bool("warm", true, "warm-start each solve from the previous basis")
		incr       = flag.Bool("incremental", true, "patch the LP in place from each epoch's deltas instead of rebuilding it")
		shards     = flag.Int("shards", 0, "≥2: sharded per-epoch solves with per-shard warm state")
		levels     = flag.Int("shard-levels", 0, "2: hierarchical dual-price exchange coordination")
		aggr       = flag.Bool("aggregate", false, "fold viewers into weighted super-sinks before every solve")
		pricing    = flag.String("pricing", "devex", "simplex pricing rule: devex|dantzig|partial")
		refEv      = flag.Int("refactor-every", 0, "basis refactorization cadence in pivots (0 = auto)")
		interval   = flag.Duration("interval", 0, "re-optimization cadence (0 = solve only under pressure or POST /solve)")
		pressure   = flag.Int("pressure", 64, "queued delta edits that force an immediate solve (negative disables)")
		snapPath   = flag.String("snapshot", "", "snapshot file: written on SIGTERM, POST /snapshot and every -snapshot-every solves")
		snapEvery  = flag.Int("snapshot-every", 0, "additionally snapshot after every n-th solve (0 = shutdown/POST only)")
		resume     = flag.Bool("resume", false, "resume warm from the -snapshot file when it exists")
		sloWindow  = flag.Int("slowindow", 8, "availability SLO sliding window, in epochs")
		sloTarget  = flag.Float64("slotarget", 0.5, "fraction of active sinks that must meet their threshold for an epoch to count as available")
	)
	flag.Parse()
	if (*instPath == "") == (*scenario == "") {
		usage("exactly one of -instance or -scenario must be given")
	}
	if *stickiness < 0 || *stickiness >= 1 {
		usage("-stickiness must be in [0,1), got %g", *stickiness)
	}
	if *shards < 0 {
		usage("-shards must be ≥ 0, got %d", *shards)
	}
	if *levels < 0 || *levels > 2 {
		usage("-shard-levels must be 0/1 (flat) or 2 (hierarchical), got %d", *levels)
	}
	if *levels >= 2 && *shards < 2 {
		usage("-shard-levels 2 requires -shards ≥ 2")
	}
	if *refEv < 0 {
		usage("-refactor-every must be ≥ 0, got %d", *refEv)
	}
	if *interval < 0 {
		usage("-interval must be ≥ 0")
	}
	if *snapEvery < 0 {
		usage("-snapshot-every must be ≥ 0, got %d", *snapEvery)
	}
	if (*snapEvery > 0 || *resume) && *snapPath == "" {
		usage("-resume/-snapshot-every need -snapshot")
	}
	pr, err := parsePricing(*pricing)
	if err != nil {
		fatal(err)
	}

	cfg := daemon.Config{
		Stickiness:    *stickiness,
		WarmStart:     *warm,
		SolveInterval: *interval,
		Pressure:      *pressure,
		SLOWindow:     *sloWindow,
		SLOTarget:     *sloTarget,
		SnapshotPath:  *snapPath,
		SnapshotEvery: *snapEvery,
	}
	cfg.Solver.Seed = *seed
	cfg.Solver.IncrementalLP = *incr
	cfg.Solver.Shards = *shards
	cfg.Solver.ShardLevels = *levels
	cfg.Solver.Pricing = pr
	cfg.Solver.RefactorEvery = *refEv
	if *aggr {
		cfg.Solver.Aggregate = &agg.Config{}
	}

	// Boot order: a resumable snapshot wins (warm restart); otherwise the
	// instance file or the scenario's base topology (cold start, epoch 0
	// provisioned before the listener opens).
	var d *daemon.Daemon
	switch {
	case *resume && fileExists(*snapPath):
		snap, lerr := daemon.LoadSnapshot(*snapPath)
		if lerr != nil {
			fatal(fmt.Errorf("resume: %w", lerr))
		}
		d, err = daemon.Resume(snap, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s at epoch %d (%d events, %d pending deltas)\n",
			*snapPath, d.Status().Epoch, d.Status().EventsLogged, d.Status().PendingDeltas)
	case *instPath != "":
		in, lerr := netmodel.LoadFile(*instPath)
		if lerr != nil {
			fatal(lerr)
		}
		d, err = daemon.New(in, cfg)
		if err != nil {
			fatal(err)
		}
	default:
		sc, serr := live.Make(*scenario, *seed, 1)
		if serr != nil {
			fatal(serr)
		}
		cfg.SinkRegion = sc.SinkRegion
		d, err = daemon.New(sc.Base, cfg)
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	st := d.Status()
	fmt.Printf("overlayd on http://%s — epoch %d, policy %s (POST /deltas, GET /placement, GET /status)\n",
		ln.Addr(), st.Epoch, st.Policy)

	// The solver loop owns the timeline; its exit (ctx cancel → final
	// snapshot, or a solve error) tears the listener down.
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(ctx) }()

	select {
	case err := <-runErr:
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		if err != nil {
			fatal(err)
		}
		if *snapPath != "" {
			fmt.Printf("snapshot written to %s; restart with -resume to continue warm\n", *snapPath)
		}
		fmt.Println("overlayd: shut down cleanly")
	case err := <-httpErr:
		stop()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overlayd: %v\n", err)
	os.Exit(1)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "overlayd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
