// Command overlaybench runs the experiment suite of EXPERIMENTS.md — every
// table and figure validating the paper's claims — and prints the tables.
// It can additionally profile the solve pipeline stage by stage and emit
// the numbers as JSON, so successive PRs can track the performance
// trajectory in BENCH_*.json files.
//
// Usage:
//
//	overlaybench                # full suite (minutes)
//	overlaybench -quick         # reduced sizes (seconds)
//	overlaybench -only T2,T5    # subset by experiment ID
//	overlaybench -trials 20     # more seeds per cell
//	overlaybench -stages        # per-stage timing/allocation table
//	overlaybench -json out.json # machine-readable stage timings
//
// The sharded-solve acceptance sweep (S-series extended through 2000 sinks)
// writes BENCH_shard.json:
//
//	overlaybench -shardjson BENCH_shard.json [-monodeadline 60s]
//
// The incremental-LP-rebuild sweep (L5 across the scenario library, plus
// the 50-epoch flash-crowd acceptance workload) writes BENCH_incr.json:
//
//	overlaybench -incrjson BENCH_incr.json
//
// The multi-stream accounting sweep (the L6 workload: native viewer churn
// vs the paper's copy-split WLOG) writes BENCH_multistream.json, and the CI
// artifact mode regenerates every sweep into one directory:
//
//	overlaybench -multijson BENCH_multistream.json
//	overlaybench -quick -benchjson bench-artifacts/
//
// Each size solves with 8 shards, then attempts the monolithic reference in
// a subprocess killed at -monodeadline: at 2000 sinks the monolithic
// simplex does not terminate, so the record shows the deadline forfeit
// (with the speedup floor it proves) instead of a number nobody can
// reproduce.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced sizes/trials")
		only      = flag.String("only", "", "comma-separated experiment IDs (default all)")
		trials    = flag.Int("trials", 0, "override trials per cell")
		stages    = flag.Bool("stages", false, "print per-stage pipeline instrumentation")
		jsonPath  = flag.String("json", "", "write per-stage timings as JSON to this file")
		shardJSON = flag.String("shardjson", "", "run the sharded-solve scaling sweep and write BENCH_shard.json here")
		monoDL    = flag.Duration("monodeadline", 60*time.Second, "wall budget per monolithic reference solve in the -shardjson sweep")
		monoProbe = flag.String("mono-probe", "", "internal: solve this instance monolithically and print JSON (subprocess mode)")
		incrJSON  = flag.String("incrjson", "", "run the incremental-LP-rebuild sweep and write BENCH_incr.json here")
		multiJSON = flag.String("multijson", "", "run the multi-stream accounting sweep (L6 workload) and write BENCH_multistream.json here")
		aggJSON   = flag.String("aggjson", "", "run the hierarchical-aggregation scaling sweep (10^4–10^6 viewers folded into weighted super-sinks) and write BENCH_agg.json here")
		aggMax    = flag.Int("aggmax", 100_000, "viewer ceiling for the -aggjson sweep (set 1000000 for the full gated sweep)")
		benchDir  = flag.String("benchjson", "", "write every BENCH_*.json sweep (stages, incremental, multi-stream, aggregation) into this directory — the CI artifact mode; honors -quick")
	)
	flag.Parse()
	// Flag validation: malformed numeric requests are usage errors (exit 2),
	// caught before any sweep starts burning minutes.
	if *trials < 0 {
		usage("-trials must be ≥ 0, got %d", *trials)
	}
	if *monoDL <= 0 {
		usage("-monodeadline must be positive, got %v", *monoDL)
	}
	if *aggMax <= 0 {
		usage("-aggmax must be positive, got %d", *aggMax)
	}

	if *monoProbe != "" {
		runMonoProbe(*monoProbe)
		return
	}
	if *shardJSON != "" {
		if err := shardSweep(*shardJSON, *monoDL, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *incrJSON != "" {
		if err := incrSweep(*incrJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *multiJSON != "" {
		if err := multiSweep(*multiJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *aggJSON != "" {
		if err := aggSweep(*aggJSON, *quick, *aggMax); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchDir != "" {
		if err := benchArtifacts(*benchDir, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	stagesOnly := (*stages || *jsonPath != "") && *only == ""
	total := time.Now()
	if !stagesOnly {
		for _, e := range exp.All() {
			if len(want) > 0 && !want[e.ID] {
				continue
			}
			start := time.Now()
			tb := e.Run(cfg)
			fmt.Println(tb.String())
			fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("suite finished in %v\n", time.Since(total).Round(time.Millisecond))
	}

	if *stages || *jsonPath != "" {
		if err := reportStages(*stages, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
	}
}

// stageReport is the JSON schema of -json (one entry per pipeline stage of
// a representative solve, plus headline solver counters).
type stageReport struct {
	Instance     string           `json:"instance"`
	LPVars       int              `json:"lp_vars"`
	LPRows       int              `json:"lp_rows"`
	LPPivots     int              `json:"lp_pivots"`
	TotalWallNS  int64            `json:"total_wall_ns"`
	Stages       []stageReportRow `json:"stages"`
	GeneratedRFC string           `json:"generated"`
}

type stageReportRow struct {
	Name       string `json:"name"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	Runs       int    `json:"runs"`
}

// reportStages solves the T7 benchmark instance (the scalability
// acceptance workload) once and reports its per-stage instrumentation.
func reportStages(print bool, jsonPath string) error {
	const instance = "uniform-2x8x20-seed3"
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	opts := core.DefaultOptions(1)
	opts.StageMemStats = true
	start := time.Now()
	res, err := core.Solve(in, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if print {
		fmt.Printf("pipeline stages (%s):\n", instance)
		fmt.Printf("  %-12s %12s %12s %10s %6s\n", "stage", "wall", "alloc", "allocs", "runs")
		for _, s := range res.Stages {
			fmt.Printf("  %-12s %12s %12d %10d %6d\n",
				s.Name, s.Wall.Round(time.Microsecond), s.AllocBytes, s.Allocs, s.Runs)
		}
		fmt.Printf("  %-12s %12s   (LP %d vars × %d rows, %d pivots)\n",
			"total", wall.Round(time.Microsecond),
			res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots)
	}
	if jsonPath != "" {
		rep := stageReport{
			Instance:     instance,
			LPVars:       res.Timings.TotalVars,
			LPRows:       res.Timings.TotalRows,
			LPPivots:     res.Timings.LPPivots,
			TotalWallNS:  wall.Nanoseconds(),
			GeneratedRFC: time.Now().UTC().Format(time.RFC3339),
		}
		for _, s := range res.Stages {
			rep.Stages = append(rep.Stages, stageReportRow{
				Name: s.Name, WallNS: s.Wall.Nanoseconds(),
				AllocBytes: s.AllocBytes, Allocs: s.Allocs, Runs: s.Runs,
			})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote stage timings to %s\n", jsonPath)
	}
	return nil
}

// incrRow is one scenario of the BENCH_incr.json sweep.
type incrRow struct {
	Scenario string `json:"scenario"`
	Epochs   int    `json:"epochs"`
	Shards   int    `json:"shards"`
	// RebuildNS sums the per-epoch lp-build wall of the full-rebuild
	// baseline; IncrNS sums lp-build + lp-patch of the incremental run.
	RebuildNS int64   `json:"rebuild_lp_build_ns"`
	IncrNS    int64   `json:"incr_lp_build_patch_ns"`
	Speedup   float64 `json:"speedup"`
	// Patches / Rebuilds are the incremental run's totals; Identical
	// records that both runs agreed on cost, pivots, and churn (the
	// golden-equivalence property, re-checked here on real timelines).
	Patches   int  `json:"patches"`
	Rebuilds  int  `json:"rebuilds"`
	Identical bool `json:"identical"`
	// The epoch-wall row: total wall of the same incremental timeline under
	// the previous solver behavior (Dantzig pricing, refactorize at every
	// warm-start install, re-extract every shard sub-instance) against the
	// current defaults (devex pricing, persistent factorization, cached
	// sub-instances), with the factorization telemetry of the default run.
	PrevSolverWallNS   int64   `json:"prev_solver_epoch_wall_ns"`
	EpochWallNS        int64   `json:"epoch_wall_ns"`
	EpochWallSpeedup   float64 `json:"epoch_wall_speedup"`
	Refactorizations   int     `json:"refactorizations"`
	FTUpdates          int     `json:"ft_updates"`
	ExtractionsSkipped int     `json:"extractions_skipped"`
}

// incrBench is the BENCH_incr.json schema.
type incrBench struct {
	Workload  string    `json:"workload"`
	Rows      []incrRow `json:"rows"`
	Generated string    `json:"generated"`
}

// incrSweep measures the incremental LP rebuild against the per-epoch full
// rebuild on every library scenario (warm+sticky policy), headlined by the
// 50-epoch flash crowd the bench_test acceptance asserts ≥3x on, plus a
// sharded flash-crowd row exercising the per-shard patchers.
func incrSweep(outPath string, quick bool) error {
	epochs := 50
	if quick {
		epochs = 16
	}
	bench := incrBench{
		Workload:  "scenario library on gen.Clustered (DefaultTopo), warm+sticky, incremental vs per-epoch rebuild",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	type job struct {
		name   string
		shards int
	}
	jobs := []job{}
	for _, name := range live.Names() {
		jobs = append(jobs, job{name, 0})
	}
	jobs = append(jobs, job{"flashcrowd", 3})
	for _, jb := range jobs {
		sc, err := live.Make(jb.name, 1, epochs)
		if err != nil {
			return err
		}
		run := func(noIncr, pinInstall, dantzig bool) (*live.RunReport, error) {
			cfg := live.Config{Policy: live.WarmStickyPolicy(), NoIncremental: noIncr}
			cfg.Solver.Shards = jb.shards
			// The identical-check arms pin refactorize-on-install: only the
			// incremental arm keeps lp.Problems alive, so persistence would
			// perturb near-tie pivots between the arms for reasons unrelated
			// to the patched-LP equivalence the column records.
			cfg.Solver.RefactorOnInstall = pinInstall
			if dantzig {
				cfg.Solver.Pricing = lp.DantzigPricing
			}
			return live.Run(sc, cfg)
		}
		base, err := run(true, true, false)
		if err != nil {
			return fmt.Errorf("%s rebuild: %w", jb.name, err)
		}
		incr, err := run(false, true, false)
		if err != nil {
			return fmt.Errorf("%s incremental: %w", jb.name, err)
		}
		// The epoch-wall pair: the same incremental timeline under the
		// previous solver behavior vs the current defaults.
		prev, err := run(false, true, true)
		if err != nil {
			return fmt.Errorf("%s prev-solver: %w", jb.name, err)
		}
		fast, err := run(false, false, false)
		if err != nil {
			return fmt.Errorf("%s default-solver: %w", jb.name, err)
		}
		row := incrRow{
			Scenario:  jb.name,
			Epochs:    epochs,
			Shards:    jb.shards,
			RebuildNS: base.LPConstructionNS(),
			IncrNS:    incr.LPConstructionNS(),
			Patches:   incr.TotalLPPatches,
			Rebuilds:  incr.TotalLPRebuilds,
			Identical: base.TotalTrueCost == incr.TotalTrueCost &&
				base.TotalPivots == incr.TotalPivots &&
				base.TotalArcChurn == incr.TotalArcChurn,
			PrevSolverWallNS:   prev.TotalWallNS,
			EpochWallNS:        fast.TotalWallNS,
			Refactorizations:   fast.TotalRefactorizations,
			FTUpdates:          fast.TotalFTUpdates,
			ExtractionsSkipped: fast.TotalExtractionsSkipped,
		}
		row.Speedup = float64(row.RebuildNS) / float64(row.IncrNS)
		row.EpochWallSpeedup = float64(row.PrevSolverWallNS) / float64(row.EpochWallNS)
		tag := ""
		if jb.shards > 0 {
			tag = fmt.Sprintf(" (shards=%d)", jb.shards)
		}
		fmt.Printf("%s%s: rebuild %v vs incr %v (%.1fx), %d patches, %d builds, identical=%v\n",
			jb.name, tag, time.Duration(row.RebuildNS).Round(time.Microsecond),
			time.Duration(row.IncrNS).Round(time.Microsecond), row.Speedup,
			row.Patches, row.Rebuilds, row.Identical)
		fmt.Printf("%s%s: epoch wall %v (prev solver) vs %v (%.2fx), %d FT updates, %d refactorizations, %d extractions skipped\n",
			jb.name, tag, time.Duration(row.PrevSolverWallNS).Round(time.Microsecond),
			time.Duration(row.EpochWallNS).Round(time.Microsecond), row.EpochWallSpeedup,
			row.FTUpdates, row.Refactorizations, row.ExtractionsSkipped)
		bench.Rows = append(bench.Rows, row)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote incremental-rebuild sweep to %s\n", outPath)
	return nil
}

// multiRow is one scenario of the BENCH_multistream.json sweep.
type multiRow struct {
	Scenario string `json:"scenario"`
	Epochs   int    `json:"epochs"`
	// Units counts demand units (subscriptions), Viewers the real sinks
	// behind them.
	Units   int `json:"units"`
	Viewers int `json:"viewers"`
	// StreamChurn counts subscription switches; ViewerChurn is the native
	// fractional viewer accounting; Overcount is StreamChurn/ViewerChurn —
	// the factor by which the paper's copy-split WLOG would have
	// exaggerated viewer churn.
	StreamChurn int     `json:"stream_churn"`
	ViewerChurn float64 `json:"viewer_churn"`
	Overcount   float64 `json:"copy_split_overcount"`
	ArcChurn    int     `json:"arc_churn"`
	// Patches / Rebuilds: stream churn must ride the incremental LP path
	// (Rebuilds stays at the epoch-0 build).
	Patches  int `json:"lp_patches"`
	Rebuilds int `json:"lp_rebuilds"`
	// SplitLPEqual re-verifies the WLOG theorem on the base instance: the
	// native LP optimum equals the copy-split optimum.
	SplitLPEqual bool `json:"split_lp_equal"`
	AuditOK      bool `json:"all_audit_ok"`
}

// multiBench is the BENCH_multistream.json schema.
type multiBench struct {
	Workload  string     `json:"workload"`
	Rows      []multiRow `json:"rows"`
	Generated string     `json:"generated"`
}

// multiSweep runs the L6 workload — the multi-stream scenario pair under
// warm+sticky incremental re-provisioning — and records the native
// stream/viewer churn accounting next to the copy-split equivalence check.
func multiSweep(outPath string, quick bool) error {
	epochs := 50
	if quick {
		epochs = 16
	}
	bench := multiBench{
		Workload:  "multi-stream scenarios on gen.Clustered (MultiStreamTopo: 3 streams, 2 per sink), warm+sticky, incremental LP",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, name := range []string{"streamwave", "streamfailover"} {
		sc, err := live.Make(name, 1, epochs)
		if err != nil {
			return err
		}
		rep, err := live.Run(sc, live.Config{Policy: live.WarmStickyPolicy()})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		row := multiRow{
			Scenario:    name,
			Epochs:      epochs,
			Units:       sc.Base.NumSinks,
			Viewers:     sc.Base.NumViewers(),
			StreamChurn: rep.TotalStreamChurn,
			ViewerChurn: rep.TotalViewerChurn,
			ArcChurn:    rep.TotalArcChurn,
			Patches:     rep.TotalLPPatches,
			Rebuilds:    rep.TotalLPRebuilds,
			AuditOK:     rep.AllAuditOK,
		}
		if row.ViewerChurn > 0 {
			row.Overcount = float64(row.StreamChurn) / row.ViewerChurn
		}
		nat, err := lpmodel.SolveLP(sc.Base, lpmodel.DefaultOptions(sc.Base))
		if err != nil {
			return fmt.Errorf("%s native LP: %w", name, err)
		}
		split := sc.Base.SplitStreams()
		sp, err := lpmodel.SolveLP(split, lpmodel.DefaultOptions(split))
		if err != nil {
			return fmt.Errorf("%s copy-split LP: %w", name, err)
		}
		row.SplitLPEqual = math.Abs(nat.Cost-sp.Cost) <= 1e-9*(1+math.Abs(sp.Cost))
		fmt.Printf("%s: %d stream switches → %.1f viewer churn (%.1fx copy-split overcount), %d patches, %d builds, lp≡split=%v, auditOK=%v\n",
			name, row.StreamChurn, row.ViewerChurn, row.Overcount, row.Patches, row.Rebuilds, row.SplitLPEqual, row.AuditOK)
		bench.Rows = append(bench.Rows, row)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote multi-stream sweep to %s\n", outPath)
	return nil
}

// aggRow is one viewer-population size of the BENCH_agg.json sweep.
type aggRow struct {
	Viewers    int `json:"viewers"`
	Reflectors int `json:"reflectors"`
	// Groups / AggUnits are the fold's output: weighted super-sinks and the
	// demand units the LP actually solves over (= the LP's sink axis).
	Groups   int `json:"agg_groups"`
	AggUnits int `json:"agg_units"`
	// The one-shot aggregated solve (devex defaults): fold, solve, unfold.
	AggWallNS     int64   `json:"agg_wall_ns"`
	AggCost       float64 `json:"agg_cost"`
	CostPerViewer float64 `json:"agg_cost_per_viewer"`
	AuditOK       bool    `json:"audit_ok"`
	// The trusted unaggregated reference, solved only at sizes where the
	// |R|·|D| monolithic LP is tractable; CostRatio = agg / flat is the
	// aggregation overhead the equivalence harness pins at ≤ 1.05.
	FlatWallNS int64   `json:"flat_wall_ns,omitempty"`
	FlatCost   float64 `json:"flat_cost,omitempty"`
	CostRatio  float64 `json:"cost_ratio,omitempty"`
	// CostPerViewerVsRef pins the large sizes (where no flat solve exists)
	// to the reference row: aggregated cost per viewer relative to the
	// smallest size's, so drift at scale is visible in the artifact.
	CostPerViewerVsRef float64 `json:"cost_per_viewer_vs_ref,omitempty"`
	// The churn timeline: drop 1% → rejoin → weight-neutral swap →
	// repricing, under the incremental session. MaxEpochWallNS is the
	// slowest epoch; EpochWallOK says it stayed inside the budget.
	Epochs         int   `json:"epochs"`
	MaxEpochWallNS int64 `json:"max_epoch_wall_ns"`
	EpochWallOK    bool  `json:"epoch_wall_ok"`
	LPFreeEpochs   int   `json:"lp_free_epochs"`
	WeightChanges  int   `json:"agg_weight_changes"`
	Patches        int   `json:"lp_patches"`
	// The devex-at-scale re-measure (the PR-6 follow-up) on the aggregate
	// LP: pivots and wall under both pricing rules at this size.
	DevexPivots   int   `json:"devex_pivots"`
	DantzigPivots int   `json:"dantzig_pivots"`
	DevexWallNS   int64 `json:"devex_wall_ns"`
	DantzigWallNS int64 `json:"dantzig_wall_ns"`
}

// aggBench is the BENCH_agg.json schema.
type aggBench struct {
	Workload        string   `json:"workload"`
	EpochWallBudget string   `json:"epoch_wall_budget"`
	Rows            []aggRow `json:"rows"`
	Generated       string   `json:"generated"`
}

// aggEpochWallBudget bounds every churn epoch of the -aggjson sweep: an
// aggregated epoch at 10^5 viewers is a fold refresh plus a few-hundred-unit
// LP, so two minutes is generous headroom, not a target. What matters is
// that the bound holds FLAT as viewers scale — the aggregate LP's size
// doesn't grow with V (the flat path forfeits outright past ~2000 sinks) —
// and that the worst case, a repricing epoch that trips the devex-stall
// recovery (a full extra cold solve), still fits on a contended CI core.
const aggEpochWallBudget = 120 * time.Second

// aggAnchors mirrors internal/agg's default grouping (each viewer labeled by
// the reflector serving it cheapest, ties to the lowest index) so the sweep
// can construct churn that is provably intra-aggregate. Computed on the
// pristine instance — the fold's membership is fixed at build time.
func aggAnchors(in *netmodel.Instance) []int {
	_, R, _ := in.Dims()
	units := in.ViewerUnits()
	out := make([]int, len(units))
	for g, us := range units {
		best, bestC := 0, math.Inf(1)
		for i := 0; i < R; i++ {
			c := 0.0
			for _, j := range us {
				c += in.RefSinkCost[i][j]
			}
			if c < bestC {
				best, bestC = i, c
			}
		}
		out[g] = best
	}
	return out
}

// aggSweep scales the hierarchical aggregation to production viewer counts:
// each size folds a clustered footprint into weighted super-sinks, solves
// one-shot (against the unaggregated reference where that LP is tractable),
// then drives a short churn timeline through the incremental session —
// including the weight-neutral swap that must solve LP-free — and re-measures
// devex vs dantzig pricing on the aggregate LP. maxViewers gates the top
// sizes: 10^5 is the default sweep, 10^6 the opt-in full footprint.
func aggSweep(outPath string, quick bool, maxViewers int) error {
	const regions, isps = 10, 5
	const flatRefViewers = 250 // largest size the monolithic flat LP solves fast
	sizes := []int{flatRefViewers, 1_000, 10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{flatRefViewers, 1_000, 10_000}
	}
	bench := aggBench{
		Workload: fmt.Sprintf(
			"gen.Clustered sources=2 regions=%d isps=%d (colors stripped), anchor-grouped aggregation, seed 7; churn: drop 1%% → rejoin → weight-neutral swap → repricing",
			regions, isps),
		EpochWallBudget: aggEpochWallBudget.String(),
		Generated:       time.Now().UTC().Format(time.RFC3339),
	}
	refCPV := 0.0
	for _, viewers := range sizes {
		if viewers > maxViewers && viewers != flatRefViewers {
			fmt.Printf("V=%d: skipped (over -aggmax %d)\n", viewers, maxViewers)
			continue
		}
		in := gen.Clustered(gen.DefaultClustered(2, regions, isps, viewers/regions), 7)
		// Colors stripped, matching the -shardjson scaling workload: the
		// per-color covering rows multiply LP size without changing what this
		// sweep measures (the fold, not the color constraints).
		in.Color = nil
		in.NumColors = 0
		row := aggRow{Viewers: in.NumViewers(), Reflectors: in.NumReflectors, EpochWallOK: true}

		// One-shot aggregated solve, registry attached so the fold's shape
		// comes from the same overlay_agg_* gauges CI scrapes.
		reg := obs.NewRegistry()
		opts := core.DefaultOptions(1)
		opts.Aggregate = &agg.Config{}
		opts.Obs = &obs.Observer{Reg: reg}
		start := time.Now()
		res, err := core.Solve(in.Clone(), opts)
		if err != nil {
			return fmt.Errorf("aggregated V=%d: %w", viewers, err)
		}
		row.AggWallNS = time.Since(start).Nanoseconds()
		row.AggCost = res.Audit.Cost
		row.CostPerViewer = res.Audit.Cost / float64(viewers)
		row.AuditOK = res.AuditOK()
		row.DevexPivots = res.Timings.LPPivots
		row.DevexWallNS = row.AggWallNS
		row.Groups = int(reg.Gauge(obs.MAggGroups).Value())
		row.AggUnits = int(reg.Gauge(obs.MAggUnits).Value())
		if viewers == flatRefViewers {
			fopts := core.DefaultOptions(1)
			start = time.Now()
			flat, err := core.Solve(in.Clone(), fopts)
			if err != nil {
				return fmt.Errorf("flat V=%d: %w", viewers, err)
			}
			row.FlatWallNS = time.Since(start).Nanoseconds()
			row.FlatCost = flat.Audit.Cost
			row.CostRatio = row.AggCost / flat.Audit.Cost
			refCPV = row.CostPerViewer
		} else if refCPV > 0 {
			row.CostPerViewerVsRef = row.CostPerViewer / refCPV
		}

		// Dantzig re-measure of the same aggregate LP (the PR-6 follow-up:
		// does devex still pay once aggregation shrinks the sink axis?).
		dopts := core.DefaultOptions(1)
		dopts.Aggregate = &agg.Config{}
		dopts.Pricing = lp.DantzigPricing
		start = time.Now()
		dres, err := core.Solve(in.Clone(), dopts)
		if err != nil {
			return fmt.Errorf("aggregated dantzig V=%d: %w", viewers, err)
		}
		row.DantzigWallNS = time.Since(start).Nanoseconds()
		row.DantzigPivots = dres.Timings.LPPivots

		// The churn timeline. Membership is fixed at the session's first
		// Step, so the swap pair is chosen on the pristine instance.
		anchors := aggAnchors(in)
		G := in.NumViewers()
		const stride = 100 // every 100th viewer churns: a 1% storm
		var sample []int
		for g := 0; g < G; g += stride {
			sample = append(sample, g)
		}
		thr0 := append([]float64(nil), in.Threshold...)
		// b leaves in the storm and stays out; a is an active viewer of the
		// same aggregate — same anchor AND same stream (the aggregate key is
		// the (group, slot-set) pair).
		b, a := sample[0], -1
		for g := 0; g < G; g++ {
			if g != b && g%stride != 0 && anchors[g] == anchors[b] && in.Commodity[g] == in.Commodity[b] {
				a = g
				break
			}
		}
		sreg := obs.NewRegistry()
		sopts := core.DefaultOptions(7)
		sopts.Aggregate = &agg.Config{}
		sopts.IncrementalLP = true
		sopts.Obs = &obs.Observer{Reg: sreg}
		sess := core.NewSession(sopts, 0, true)
		epoch := func(d *netmodel.Delta) error {
			if d != nil {
				ds, err := d.Apply(in)
				if err != nil {
					return err
				}
				sess.Observe(ds)
			}
			start := time.Now()
			r, err := sess.Step(in)
			if err != nil {
				return err
			}
			wall := time.Since(start).Nanoseconds()
			if wall > row.MaxEpochWallNS {
				row.MaxEpochWallNS = wall
			}
			if r.Patch != nil {
				row.Patches += r.Patch.Patches()
			}
			row.Epochs++
			return nil
		}
		drop := &netmodel.Delta{Note: "churn storm: 1% leave"}
		rejoin := &netmodel.Delta{Note: "storm viewers rejoin"}
		for _, g := range sample {
			drop.SetThreshold = append(drop.SetThreshold, netmodel.SinkValue{Sink: g, Value: 0})
			if g != b {
				rejoin.SetThreshold = append(rejoin.SetThreshold, netmodel.SinkValue{Sink: g, Value: thr0[g]})
			}
		}
		deltas := []*netmodel.Delta{nil, drop, rejoin}
		if a >= 0 {
			deltas = append(deltas, &netmodel.Delta{Note: "weight-neutral intra-aggregate swap",
				SetThreshold: []netmodel.SinkValue{{Sink: a, Value: 0}, {Sink: b, Value: in.Threshold[a]}}})
		}
		deltas = append(deltas, &netmodel.Delta{Note: "reflector repricing",
			ScaleReflectorCost: []netmodel.RefValue{{Ref: 0, Value: 1.05}},
			ScaleRefSinkCost:   []netmodel.ArcValue{{A: 1, B: 0, Value: 1.1}}})
		for _, d := range deltas {
			if err := epoch(d); err != nil {
				return fmt.Errorf("churn epoch V=%d: %w", viewers, err)
			}
		}
		row.EpochWallOK = row.MaxEpochWallNS <= aggEpochWallBudget.Nanoseconds()
		row.LPFreeEpochs = int(sreg.Counter(obs.MAggLPFreeEpochs).Value())
		row.WeightChanges = int(sreg.Counter(obs.MAggWeightChanges).Value())

		fmt.Printf("V=%d: %d groups / %d units | agg %v cost %.1f (auditOK=%v)",
			viewers, row.Groups, row.AggUnits,
			time.Duration(row.AggWallNS).Round(time.Millisecond), row.AggCost, row.AuditOK)
		if row.CostRatio > 0 {
			fmt.Printf(" | flat %v (ratio %.3fx)",
				time.Duration(row.FlatWallNS).Round(time.Millisecond), row.CostRatio)
		} else if row.CostPerViewerVsRef > 0 {
			fmt.Printf(" | cost/viewer %.3fx of reference", row.CostPerViewerVsRef)
		}
		fmt.Printf(" | churn max epoch %v (ok=%v), %d lp-free, %d patches | pivots devex %d vs dantzig %d\n",
			time.Duration(row.MaxEpochWallNS).Round(time.Millisecond), row.EpochWallOK,
			row.LPFreeEpochs, row.Patches, row.DevexPivots, row.DantzigPivots)
		bench.Rows = append(bench.Rows, row)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote aggregation sweep to %s\n", outPath)
	return nil
}

// benchArtifacts is the CI artifact mode: every BENCH_*.json sweep written
// into one directory, so bench trajectories are reproducible from any CI
// run's artifacts.
func benchArtifacts(dir string, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := reportStages(false, filepath.Join(dir, "BENCH_stages.json")); err != nil {
		return fmt.Errorf("stages: %w", err)
	}
	if err := incrSweep(filepath.Join(dir, "BENCH_incr.json"), quick); err != nil {
		return fmt.Errorf("incr: %w", err)
	}
	if err := multiSweep(filepath.Join(dir, "BENCH_multistream.json"), quick); err != nil {
		return fmt.Errorf("multistream: %w", err)
	}
	aggCeil := 100_000
	if quick {
		aggCeil = 10_000
	}
	if err := aggSweep(filepath.Join(dir, "BENCH_agg.json"), quick, aggCeil); err != nil {
		return fmt.Errorf("agg: %w", err)
	}
	return nil
}

// usage reports a flag-validation failure as a usage error: the message plus
// the flag summary on stderr, exit code 2 (the flag package's own code for
// malformed command lines).
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "overlaybench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// monoProbeOut is the subprocess protocol of -mono-probe: one JSON object
// on stdout.
type monoProbeOut struct {
	WallNS  int64   `json:"wall_ns"`
	Cost    float64 `json:"cost"`
	Pivots  int     `json:"pivots"`
	AuditOK bool    `json:"audit_ok"`
	Err     string  `json:"err,omitempty"`
}

// runMonoProbe is the subprocess side: load, solve monolithically, report.
func runMonoProbe(path string) {
	out := monoProbeOut{}
	in, err := netmodel.LoadFile(path)
	if err == nil {
		start := time.Now()
		var res *core.Result
		res, err = core.Solve(in, core.DefaultOptions(1))
		out.WallNS = time.Since(start).Nanoseconds()
		if err == nil {
			out.Cost = res.Audit.Cost
			out.Pivots = res.Timings.LPPivots
			out.AuditOK = res.AuditOK()
		}
	}
	if err != nil {
		out.Err = err.Error()
	}
	json.NewEncoder(os.Stdout).Encode(out)
}

// shardRow is one size of the BENCH_shard.json sweep.
type shardRow struct {
	Sinks       int     `json:"sinks"`
	Reflectors  int     `json:"reflectors"`
	Shards      int     `json:"shards"`
	ShardWallNS int64   `json:"shard_wall_ns"`
	ShardCost   float64 `json:"shard_cost"`
	ShardPivots int     `json:"shard_pivots"`
	Rounds      int     `json:"rounds"`
	AuditOK     bool    `json:"audit_ok"`
	// Fallback marks a row whose "sharded" numbers actually came from the
	// monolithic fallback (coordination could not feed a shard); the mono
	// probe is skipped for such rows — the comparison would be
	// monolithic-vs-monolithic.
	Fallback bool `json:"fallback"`
	// MonoStatus is "ok", "deadline", or "error: ...". On "ok" the mono
	// numbers are real; on "deadline" SpeedupFloor is what the forfeit
	// proves (deadline / sharded wall).
	MonoStatus   string  `json:"mono_status"`
	MonoWallNS   int64   `json:"mono_wall_ns,omitempty"`
	MonoCost     float64 `json:"mono_cost,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	SpeedupFloor float64 `json:"speedup_floor,omitempty"`
	CostRatio    float64 `json:"cost_ratio,omitempty"`
}

// reflectorRow is one |R| size of the reflector-axis sweep: the same
// capacity-constrained instance coordinated flat (proportional re-bidding)
// and hierarchically (two-level dual-price exchange), side by side.
type reflectorRow struct {
	Reflectors int `json:"reflectors"`
	Sinks      int `json:"sinks"`
	Shards     int `json:"shards"`
	Fanout     int `json:"fanout"`
	// The flat coordination arm.
	FlatWallNS   int64   `json:"flat_wall_ns"`
	FlatRounds   int     `json:"flat_rounds"`
	FlatResolves int     `json:"flat_resolves"`
	FlatCost     float64 `json:"flat_cost"`
	FlatAuditOK  bool    `json:"flat_audit_ok"`
	// The hierarchical exchange arm.
	HierWallNS          int64   `json:"hier_wall_ns"`
	ExchangeRounds      int     `json:"exchange_rounds"`
	ExchangeGap         float64 `json:"exchange_gap"`
	ContestedReflectors int     `json:"contested_reflectors"`
	HierResolves        int     `json:"hier_resolves"`
	HierCost            float64 `json:"hier_cost"`
	HierAuditOK         bool    `json:"hier_audit_ok"`
	// CostRatio = hier / flat; RoundRatio = exchange / flat rounds.
	CostRatio  float64 `json:"cost_ratio"`
	RoundRatio float64 `json:"round_ratio,omitempty"`
}

// shardBench is the BENCH_shard.json schema.
type shardBench struct {
	Workload     string     `json:"workload"`
	MonoDeadline string     `json:"mono_deadline"`
	Rows         []shardRow `json:"rows"`
	// ReflectorRows is the reflector-axis sweep: fixed sink population,
	// |R| grown 50 → 500 with total fanout capacity held near-constant
	// (scarce), flat coordination vs the hierarchical dual-price exchange.
	ReflectorRows []reflectorRow `json:"reflector_rows"`
	Generated     string         `json:"generated"`
}

// shardSweep runs the S2 extended scaling sweep: 8-shard solves from 252 to
// 2000 sinks, each against a deadline-bounded monolithic reference run in a
// subprocess (a solve that blows the deadline is killed and recorded as a
// forfeit — the honest way to benchmark against a solver that does not
// terminate at the top size).
func shardSweep(outPath string, deadline time.Duration, quick bool) error {
	sprs := []int{63, 125, 250, 500}
	if quick {
		sprs = []int{25, 50}
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "shardsweep")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bench := shardBench{
		Workload:     "gen.Clustered sources=2 regions=4 isps=3 (colors stripped), shards=8, seed 7",
		MonoDeadline: deadline.String(),
		Generated:    time.Now().UTC().Format(time.RFC3339),
	}
	for _, spr := range sprs {
		cc := gen.DefaultClustered(2, 4, 3, spr)
		in := gen.Clustered(cc, 7)
		in.Color = nil
		in.NumColors = 0

		opts := core.DefaultOptions(1)
		opts.Shards = 8
		start := time.Now()
		res, err := core.Solve(in, opts)
		if err != nil {
			return fmt.Errorf("sharded D=%d: %w", in.NumSinks, err)
		}
		shardWall := time.Since(start)
		row := shardRow{
			Sinks:       in.NumSinks,
			Reflectors:  in.NumReflectors,
			Shards:      res.ShardInfo.Shards,
			ShardWallNS: shardWall.Nanoseconds(),
			ShardCost:   res.Audit.Cost,
			ShardPivots: res.Timings.LPPivots,
			Rounds:      res.ShardInfo.Rounds,
			AuditOK:     res.AuditOK(),
			Fallback:    res.ShardInfo.Fallback,
		}
		if row.Fallback {
			row.MonoStatus = "skipped (sharded solve fell back to monolithic)"
			fmt.Printf("D=%d: FELL BACK to monolithic (%v) — row records no sharded numbers\n",
				in.NumSinks, shardWall.Round(time.Millisecond))
			bench.Rows = append(bench.Rows, row)
			continue
		}

		instPath := filepath.Join(tmp, fmt.Sprintf("inst-%d.json", in.NumSinks))
		f, err := os.Create(instPath)
		if err != nil {
			return err
		}
		if err := in.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		f.Close()

		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		outBytes, err := exec.CommandContext(ctx, self, "-mono-probe", instPath).Output()
		timedOut := ctx.Err() == context.DeadlineExceeded
		cancel()
		var probe monoProbeOut
		switch {
		case timedOut:
			row.MonoStatus = "deadline"
			row.SpeedupFloor = float64(deadline) / float64(shardWall)
		case err != nil:
			row.MonoStatus = "error: " + err.Error()
		default:
			if uerr := json.Unmarshal(outBytes, &probe); uerr != nil {
				out := outBytes
				if len(out) > 120 {
					out = out[:120]
				}
				row.MonoStatus = fmt.Sprintf("error: bad probe output %q: %v", out, uerr)
				break
			}
			if probe.Err != "" {
				row.MonoStatus = "error: " + probe.Err
				break
			}
			row.MonoStatus = "ok"
			row.MonoWallNS = probe.WallNS
			row.MonoCost = probe.Cost
			row.Speedup = float64(probe.WallNS) / float64(row.ShardWallNS)
			row.CostRatio = row.ShardCost / probe.Cost
		}
		fmt.Printf("D=%d: sharded %v cost %.1f | mono %s", in.NumSinks,
			shardWall.Round(time.Millisecond), row.ShardCost, row.MonoStatus)
		if row.MonoStatus == "ok" {
			fmt.Printf(" %v (%.1fx, cost %.3fx)",
				time.Duration(row.MonoWallNS).Round(time.Millisecond), row.Speedup, row.CostRatio)
		} else if row.SpeedupFloor > 0 {
			fmt.Printf(" (≥%.1fx proven)", row.SpeedupFloor)
		}
		fmt.Println()
		bench.Rows = append(bench.Rows, row)
	}
	rows, err := reflectorSweep(quick)
	if err != nil {
		return err
	}
	bench.ReflectorRows = rows

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote shard sweep to %s\n", outPath)
	return nil
}

// reflectorSweep grows the reflector axis 50 → 500 over a fixed sink
// population with total fanout capacity held near-constant (≈2.5 service
// slots per sink — scarce enough that shards contend), and coordinates each
// instance both ways: flat proportional re-bidding vs the two-level
// dual-price exchange. The sweep is where the exchange's claim lives: as
// |R| grows, contested reflectors multiply, and the price-priority clearing
// should hold its round count (and cost) at or below the flat pass's.
func reflectorSweep(quick bool) ([]reflectorRow, error) {
	const regions, isps = 10, 5
	rpcs := []int{1, 2, 4, 10} // |R| = 50, 100, 200, 500
	spr := 16                  // 160 sinks
	if quick {
		rpcs = []int{1, 2}
		spr = 8
	}
	var rows []reflectorRow
	for _, rpc := range rpcs {
		cc := gen.DefaultClustered(2, regions, isps, spr)
		cc.ReflectorsPerColo = rpc
		R := regions * isps * rpc
		D := regions * spr
		// ⌈2.5·D / R⌉: capacity stays scarce as R grows. Floored at 2 —
		// single-slot reflectors are a degenerate knife edge where the
		// clustered generator's cheap sets collapse, not a scarcity regime.
		cc.Fanout = max((5*D/2+R-1)/R, 2)
		in := gen.Clustered(cc, 21)
		in.Color = nil
		in.NumColors = 0

		opts := core.DefaultOptions(21)
		opts.Shards = 8
		opts.ShardRounds = 8
		start := time.Now()
		flat, err := core.Solve(in, opts)
		if err != nil {
			return nil, fmt.Errorf("flat R=%d: %w", R, err)
		}
		flatWall := time.Since(start)

		opts.ShardLevels = 2
		start = time.Now()
		hier, err := core.Solve(in, opts)
		if err != nil {
			return nil, fmt.Errorf("hier R=%d: %w", R, err)
		}
		hierWall := time.Since(start)

		// At the engineered 2.5x scarcity the rounded designs can leave
		// sinks below quarter weight in either arm; running the §7 repair
		// pass INSIDE the solve (opts.RepairCoverage) would heal each shard
		// before the coordination loop ever sees starvation and zero out the
		// very rounds the sweep measures, so repair the final merged designs
		// here instead and audit what would actually deploy.
		core.RepairCoverage(in, flat.Design, 4)
		core.RepairCoverage(in, hier.Design, 4)
		fa := netmodel.AuditDesign(in, flat.Design)
		ha := netmodel.AuditDesign(in, hier.Design)

		fi, hi := flat.ShardInfo, hier.ShardInfo
		row := reflectorRow{
			Reflectors: in.NumReflectors, Sinks: in.NumSinks,
			Shards: fi.Shards, Fanout: cc.Fanout,
			FlatWallNS: flatWall.Nanoseconds(), FlatRounds: fi.Rounds,
			FlatResolves: fi.Resolves, FlatCost: fa.Cost,
			FlatAuditOK: fa.StructureOK && core.MeetsGuarantee(fa, flat.PathRounding),
			HierWallNS:  hierWall.Nanoseconds(), ExchangeRounds: hi.ExchangeRounds,
			ExchangeGap: hi.ExchangeGap, ContestedReflectors: hi.ContestedReflectors,
			HierResolves: hi.Resolves, HierCost: ha.Cost,
			HierAuditOK: ha.StructureOK && core.MeetsGuarantee(ha, hier.PathRounding),
		}
		if fa.Cost > 0 {
			row.CostRatio = ha.Cost / fa.Cost
		}
		if fi.Rounds > 0 {
			row.RoundRatio = float64(hi.ExchangeRounds) / float64(fi.Rounds)
		}
		fmt.Printf("R=%d D=%d F=%d: flat %d rounds %v cost %.1f | exchange %d rounds (gap %.4f, %d contested) %v cost %.1f (%.3fx)\n",
			R, in.NumSinks, cc.Fanout, row.FlatRounds, flatWall.Round(time.Millisecond), row.FlatCost,
			row.ExchangeRounds, row.ExchangeGap, row.ContestedReflectors,
			hierWall.Round(time.Millisecond), row.HierCost, row.CostRatio)
		rows = append(rows, row)
	}
	return rows, nil
}
