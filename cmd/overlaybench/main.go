// Command overlaybench runs the experiment suite of EXPERIMENTS.md — every
// table and figure validating the paper's claims — and prints the tables.
//
// Usage:
//
//	overlaybench                # full suite (minutes)
//	overlaybench -quick         # reduced sizes (seconds)
//	overlaybench -only T2,T5    # subset by experiment ID
//	overlaybench -trials 20     # more seeds per cell
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced sizes/trials")
		only   = flag.String("only", "", "comma-separated experiment IDs (default all)")
		trials = flag.Int("trials", 0, "override trials per cell")
	)
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	total := time.Now()
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tb := e.Run(cfg)
		fmt.Println(tb.String())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("suite finished in %v\n", time.Since(total).Round(time.Millisecond))
}
