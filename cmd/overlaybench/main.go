// Command overlaybench runs the experiment suite of EXPERIMENTS.md — every
// table and figure validating the paper's claims — and prints the tables.
// It can additionally profile the solve pipeline stage by stage and emit
// the numbers as JSON, so successive PRs can track the performance
// trajectory in BENCH_*.json files.
//
// Usage:
//
//	overlaybench                # full suite (minutes)
//	overlaybench -quick         # reduced sizes (seconds)
//	overlaybench -only T2,T5    # subset by experiment ID
//	overlaybench -trials 20     # more seeds per cell
//	overlaybench -stages        # per-stage timing/allocation table
//	overlaybench -json out.json # machine-readable stage timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced sizes/trials")
		only     = flag.String("only", "", "comma-separated experiment IDs (default all)")
		trials   = flag.Int("trials", 0, "override trials per cell")
		stages   = flag.Bool("stages", false, "print per-stage pipeline instrumentation")
		jsonPath = flag.String("json", "", "write per-stage timings as JSON to this file")
	)
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	stagesOnly := (*stages || *jsonPath != "") && *only == ""
	total := time.Now()
	if !stagesOnly {
		for _, e := range exp.All() {
			if len(want) > 0 && !want[e.ID] {
				continue
			}
			start := time.Now()
			tb := e.Run(cfg)
			fmt.Println(tb.String())
			fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("suite finished in %v\n", time.Since(total).Round(time.Millisecond))
	}

	if *stages || *jsonPath != "" {
		if err := reportStages(*stages, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "overlaybench: %v\n", err)
			os.Exit(1)
		}
	}
}

// stageReport is the JSON schema of -json (one entry per pipeline stage of
// a representative solve, plus headline solver counters).
type stageReport struct {
	Instance     string           `json:"instance"`
	LPVars       int              `json:"lp_vars"`
	LPRows       int              `json:"lp_rows"`
	LPPivots     int              `json:"lp_pivots"`
	TotalWallNS  int64            `json:"total_wall_ns"`
	Stages       []stageReportRow `json:"stages"`
	GeneratedRFC string           `json:"generated"`
}

type stageReportRow struct {
	Name       string `json:"name"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	Runs       int    `json:"runs"`
}

// reportStages solves the T7 benchmark instance (the scalability
// acceptance workload) once and reports its per-stage instrumentation.
func reportStages(print bool, jsonPath string) error {
	const instance = "uniform-2x8x20-seed3"
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	opts := core.DefaultOptions(1)
	opts.StageMemStats = true
	start := time.Now()
	res, err := core.Solve(in, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if print {
		fmt.Printf("pipeline stages (%s):\n", instance)
		fmt.Printf("  %-12s %12s %12s %10s %6s\n", "stage", "wall", "alloc", "allocs", "runs")
		for _, s := range res.Stages {
			fmt.Printf("  %-12s %12s %12d %10d %6d\n",
				s.Name, s.Wall.Round(time.Microsecond), s.AllocBytes, s.Allocs, s.Runs)
		}
		fmt.Printf("  %-12s %12s   (LP %d vars × %d rows, %d pivots)\n",
			"total", wall.Round(time.Microsecond),
			res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots)
	}
	if jsonPath != "" {
		rep := stageReport{
			Instance:     instance,
			LPVars:       res.Timings.TotalVars,
			LPRows:       res.Timings.TotalRows,
			LPPivots:     res.Timings.LPPivots,
			TotalWallNS:  wall.Nanoseconds(),
			GeneratedRFC: time.Now().UTC().Format(time.RFC3339),
		}
		for _, s := range res.Stages {
			rep.Stages = append(rep.Stages, stageReportRow{
				Name: s.Name, WallNS: s.Wall.Nanoseconds(),
				AllocBytes: s.AllocBytes, Allocs: s.Allocs, Runs: s.Runs,
			})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote stage timings to %s\n", jsonPath)
	}
	return nil
}
