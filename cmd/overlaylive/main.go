// Command overlaylive drives the live churn engine: it builds a timed
// scenario (flash crowd, diurnal wave, rolling ISP outages, correlated
// backbone failure, gradual repricing, per-stream popularity waves and
// correlated stream failover on multi-stream sinks), advances it epoch by
// epoch while
// re-provisioning the overlay the way §1.3's monitoring loop prescribes,
// and reports per-epoch cost, churn, pivots and audit status — optionally
// comparing the cold re-solve baseline against warm-started sticky
// re-optimization on the same timeline.
//
// Usage:
//
//	overlaylive -scenario flashcrowd -epochs 50          # both policies
//	overlaylive -scenario rollingisp -policy warm -v     # per-epoch detail
//	overlaylive -scenario diurnal -sim 2000              # packet-sim epochs
//	overlaylive -scenario flashcrowd -json out.json      # machine-readable
//	overlaylive -scenario flashcrowd -shards 3           # sharded epochs
//	overlaylive -scenario backbone -record trace.json    # save the delta schedule
//	overlaylive -replay trace.json -policy warm          # replay a saved trace
//	overlaylive -scenario diurnal -incremental=false     # full lp-build every epoch
//	overlaylive -scenario flashcrowd -pricing dantzig    # solver pricing-rule override
//	overlaylive -scenario flashcrowd -listen :8080       # live telemetry endpoint
//	overlaylive -scenario diurnal -trace run.jsonl -flame # hierarchical solve trace
//
// Each epoch's LP is normally patched in place from the epoch's deltas (the
// lp-patch stage; -incremental=false restores the per-epoch rebuild
// baseline), and a sliding-window availability SLO is tracked next to the
// audit (-slowindow/-slotarget).
//
// -listen starts the internal/obs debug server for the duration of the run:
// /metrics (Prometheus text), /healthz (liveness + run progress), /slo
// (windowed availability with per-region breakdowns), /debug/vars and
// /debug/pprof. Pair it with -pace to keep a short timeline scrapeable and
// -hold to keep serving after the timeline finishes. -trace writes the
// hierarchical solve trace (epoch → stage → shard → simplex events) as
// JSONL; -flame prints an aggregated flame summary of that trace.
//
// Everything is deterministic in -seed except wall-clock fields; the
// observability flags never change the solve (metrics and traces are
// read-only taps).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/live"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/stats"
)

// parsePricing maps the -pricing flag to the solver's pricing rules.
func parsePricing(s string) (lp.Pricing, error) {
	switch s {
	case "devex":
		return lp.DevexPricing, nil
	case "dantzig":
		return lp.DantzigPricing, nil
	case "partial":
		return lp.PartialPricing, nil
	}
	return 0, fmt.Errorf("unknown pricing %q (want devex|dantzig|partial)", s)
}

func main() {
	var (
		scenario   = flag.String("scenario", "flashcrowd", "scenario: "+strings.Join(live.Names(), "|"))
		epochs     = flag.Int("epochs", 50, "timeline length in epochs")
		seed       = flag.Uint64("seed", 1, "scenario seed (events, topology, rounding)")
		policy     = flag.String("policy", "both", "re-provisioning policy: cold|warm|both")
		stickiness = flag.Float64("stickiness", 0.4, "deployed-design cost discount for the warm policy, in [0,1)")
		shards     = flag.Int("shards", 0, "≥2: sharded per-epoch solves with per-shard warm state (internal/shard)")
		levels     = flag.Int("shard-levels", 0, "2: hierarchical dual-price exchange coordination (super-shards over the cost-anchor leaves)")
		aggr       = flag.Bool("aggregate", false, "fold viewers into weighted super-sinks before every epoch's LP (internal/agg)")
		simPkts    = flag.Int("sim", 0, "packets per simulated epoch (0 = no packet sim)")
		simEvery   = flag.Int("simevery", 1, "simulate every n-th epoch")
		jsonPath   = flag.String("json", "", "write the full report as JSON to this file")
		verbose    = flag.Bool("v", false, "print every epoch (default: only event epochs)")
		incr       = flag.Bool("incremental", true, "patch the LP in place from each epoch's deltas (lp-patch) instead of rebuilding it")
		record     = flag.String("record", "", "serialize the scenario (base instance + timed delta schedule) as JSON to this file")
		replay     = flag.String("replay", "", "run a scenario recorded with -record instead of building one (-scenario/-epochs/-seed ignored)")
		sloWindow  = flag.Int("slowindow", 8, "availability SLO sliding window, in epochs")
		sloTarget  = flag.Float64("slotarget", 0.5, "fraction of active sinks that must meet their threshold for an epoch to count as available (raise toward 1 with -repair-style solvers)")
		pricing    = flag.String("pricing", "devex", "simplex pricing rule: devex|dantzig|partial")
		refEv      = flag.Int("refactor-every", 0, "basis refactorization cadence in pivots (0 = auto: 16+2√rows)")
		listen     = flag.String("listen", "", "serve live telemetry on this address during the run: /metrics, /healthz, /slo, /debug/vars, /debug/pprof")
		tracePath  = flag.String("trace", "", "write the hierarchical solve trace (epoch → stage → shard → simplex events) as JSONL to this file")
		flame      = flag.Bool("flame", false, "print an aggregated flame summary of the solve trace after the run (implies tracing)")
		pace       = flag.Duration("pace", 0, "sleep this long after every epoch — keeps a short -listen run scrapeable mid-flight")
		hold       = flag.Duration("hold", 0, "keep the -listen server up this long after the timeline finishes")
	)
	flag.Parse()
	// Flag validation: malformed requests are usage errors (exit 2), caught
	// before any file or socket is touched. -epochs is only checked when it
	// is actually used — -replay ignores it by documented contract.
	if *replay == "" && *epochs <= 0 {
		usage("-epochs must be positive, got %d", *epochs)
	}
	if *shards < 0 {
		usage("-shards must be ≥ 0, got %d", *shards)
	}
	if *levels < 0 || *levels > 2 {
		usage("-shard-levels must be 0/1 (flat) or 2 (hierarchical), got %d", *levels)
	}
	if *levels >= 2 && *shards < 2 {
		usage("-shard-levels 2 requires -shards ≥ 2")
	}
	if *refEv < 0 {
		usage("-refactor-every must be ≥ 0, got %d", *refEv)
	}
	if *pace < 0 || *hold < 0 {
		usage("-pace and -hold must be ≥ 0")
	}
	if *listen == "" && (*pace > 0 || *hold > 0) {
		usage("-pace/-hold only make sense with -listen (they exist to keep the telemetry endpoint scrapeable)")
	}
	pr, err := parsePricing(*pricing)
	if err != nil {
		fatal(err)
	}

	var sc *live.Scenario
	if *replay != "" {
		f, ferr := os.Open(*replay)
		if ferr != nil {
			fatal(ferr)
		}
		sc, err = live.ReadScenario(f)
		f.Close()
	} else {
		sc, err = live.Make(*scenario, *seed, *epochs)
	}
	if err != nil {
		fatal(err)
	}
	if *record != "" {
		f, ferr := os.Create(*record)
		if ferr != nil {
			fatal(ferr)
		}
		if err := live.WriteScenario(f, sc); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("recorded scenario %s (%d events over %d epochs) to %s\n",
			sc.Name, len(sc.Events), sc.Epochs, *record)
	}
	var policies []live.Policy
	warm := live.WarmStickyPolicy()
	warm.Stickiness = *stickiness
	switch *policy {
	case "cold":
		policies = []live.Policy{live.ColdPolicy()}
	case "warm":
		policies = []live.Policy{warm}
	case "both":
		policies = []live.Policy{live.ColdPolicy(), warm}
	default:
		fatal(fmt.Errorf("unknown policy %q (want cold|warm|both)", *policy))
	}

	cfg := live.Config{
		SimPackets: *simPkts, SimEvery: *simEvery,
		NoIncremental: !*incr,
		SLOWindow:     *sloWindow, SLOTarget: *sloTarget,
	}
	cfg.Solver.Shards = *shards
	cfg.Solver.ShardLevels = *levels
	cfg.Solver.Pricing = pr
	cfg.Solver.RefactorEvery = *refEv
	if *aggr {
		cfg.Solver.Aggregate = &agg.Config{}
	}

	// Observability surfaces. The registry backs -listen's /metrics; the
	// tracer backs -trace/-flame. Both are nil (and the run byte-identical
	// to an uninstrumented one) unless asked for.
	var (
		reg       *obs.Registry
		server    *obs.Server
		tracer    *obs.Tracer
		traceFile *os.File
		flameBuf  *bytes.Buffer
	)
	if *listen != "" {
		reg = obs.NewRegistry()
		obs.Canonical(reg)
		server = obs.NewServer(reg)
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			fatal(lerr)
		}
		go func() {
			if serr := http.Serve(ln, server.Handler()); serr != nil {
				fmt.Fprintf(os.Stderr, "overlaylive: telemetry server: %v\n", serr)
			}
		}()
		fmt.Printf("telemetry on http://%s (/metrics /healthz /slo /debug/pprof)\n", ln.Addr())
	}
	var traceW io.Writer
	if *tracePath != "" {
		f, ferr := os.Create(*tracePath)
		if ferr != nil {
			fatal(ferr)
		}
		traceFile = f
		traceW = f
	}
	if *flame {
		flameBuf = &bytes.Buffer{}
		if traceW != nil {
			traceW = io.MultiWriter(traceFile, flameBuf)
		} else {
			traceW = flameBuf
		}
	}
	if traceW != nil {
		tracer = obs.NewTracer(traceW)
	}
	if reg != nil || tracer != nil {
		cfg.Obs = &obs.Observer{Reg: reg, Tr: tracer}
	}

	start := time.Now()
	// Run each policy with its own telemetry hook (live.ComparePolicies
	// inlined, so /healthz and /slo can name the policy currently running).
	reps := make([]*live.RunReport, 0, len(policies))
	for _, p := range policies {
		c := cfg
		c.Policy = p
		pname := p.Name
		breaches, minWin := 0, 1.0
		c.OnEpoch = func(er live.EpochReport) {
			if !er.SLOOk {
				breaches++
			}
			if er.SLOWindowFrac < minWin {
				minWin = er.SLOWindowFrac
			}
			if server != nil {
				server.SetHealth(obs.HealthStatus{
					OK: er.AuditOK, Running: true,
					Scenario: sc.Name, Policy: pname,
					Epoch: er.Epoch, Epochs: sc.Epochs,
					AuditOK: er.AuditOK, SLOOk: er.SLOOk,
				})
				regions := make([]obs.RegionSLO, 0, len(er.Regions))
				for _, ra := range er.Regions {
					regions = append(regions, obs.RegionSLO{
						Region: ra.Region, Active: ra.Active, Met: ra.Met,
						Frac: ra.Frac, WindowFrac: ra.WindowFrac,
					})
				}
				streams := make([]obs.StreamSLO, 0, len(er.Streams))
				for _, sa := range er.Streams {
					streams = append(streams, obs.StreamSLO{
						Stream: sa.Stream, Active: sa.Active, Met: sa.Met,
						Frac: sa.Frac, WindowFrac: sa.WindowFrac,
					})
				}
				server.SetSLO(obs.SLOStatus{
					Window: *sloWindow, Target: *sloTarget,
					Ok: er.SLOOk, WindowFrac: er.SLOWindowFrac,
					Breaches: breaches, MinWindowFrac: minWin,
					Regions: regions, Streams: streams,
				})
			}
			if *pace > 0 {
				time.Sleep(*pace)
			}
		}
		rep, rerr := live.Run(sc, c)
		if rerr != nil {
			fatal(fmt.Errorf("policy %q: %w", pname, rerr))
		}
		reps = append(reps, rep)
	}
	if server != nil {
		allOK := true
		for _, rep := range reps {
			allOK = allOK && rep.AllAuditOK
		}
		last := reps[len(reps)-1]
		server.SetHealth(obs.HealthStatus{
			OK: allOK, Running: false,
			Scenario: sc.Name, Policy: last.Policy.Name,
			Epoch: sc.Epochs - 1, Epochs: sc.Epochs,
			AuditOK: last.AllAuditOK, SLOOk: last.SLOBreaches == 0,
		})
	}

	for _, rep := range reps {
		printRun(rep, *verbose)
	}
	if len(reps) == 2 {
		printComparison(reps[0], reps[1])
	}
	fmt.Printf("timeline finished in %v\n", time.Since(start).Round(time.Millisecond))

	if *jsonPath != "" {
		out := liveReport{
			Scenario:  sc.Name,
			Epochs:    sc.Epochs,
			Seed:      sc.Seed,
			Events:    len(sc.Events),
			Runs:      reps,
			Generated: time.Now().UTC().Format(time.RFC3339),
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote live report to %s\n", *jsonPath)
	}

	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote solve trace to %s\n", *tracePath)
	}
	if *flame {
		recs, rerr := obs.ReadTrace(bytes.NewReader(flameBuf.Bytes()))
		if rerr != nil {
			fatal(fmt.Errorf("trace: %w", rerr))
		}
		fmt.Print(obs.Flame(recs).Render())
	}
	if *hold > 0 && server != nil {
		fmt.Printf("holding telemetry server for %v\n", *hold)
		time.Sleep(*hold)
	}
}

// liveReport is the -json schema: scenario metadata plus one RunReport per
// policy, in run order.
type liveReport struct {
	Scenario  string            `json:"scenario"`
	Epochs    int               `json:"epochs"`
	Seed      uint64            `json:"seed"`
	Events    int               `json:"events"`
	Runs      []*live.RunReport `json:"runs"`
	Generated string            `json:"generated"`
}

func printRun(rep *live.RunReport, verbose bool) {
	t := stats.NewTable(
		fmt.Sprintf("%s — policy %s (stickiness %.2f, warm start %v)",
			rep.Scenario, rep.Policy.Name, rep.Policy.Stickiness, rep.Policy.WarmStart),
		"epoch", "events", "active", "cost", "pivots", "arc churn", "builds", "weight", "ok")
	for _, er := range rep.Epochs {
		if !verbose && len(er.Events) == 0 && er.Epoch != 0 {
			continue
		}
		ev := strings.Join(er.Events, "; ")
		if len(ev) > 36 {
			ev = ev[:33] + "..."
		}
		if er.Epoch == 0 && ev == "" {
			ev = "(initial provisioning)"
		}
		t.AddRowf(er.Epoch, ev, er.ActiveSinks, er.TrueCost, er.Pivots, er.ArcChurn,
			er.BuiltReflectors, er.WeightFactor, yesNo(er.AuditOK))
	}
	t.AddNote("totals: pivots=%d arcChurn=%d reflChurn=%d cost=%.1f wall=%v allAuditsOK=%v",
		rep.TotalPivots, rep.TotalArcChurn, rep.TotalReflectorChurn,
		rep.TotalTrueCost, time.Duration(rep.TotalWallNS).Round(time.Microsecond), yesNo(rep.AllAuditOK))
	if rep.TotalStreamChurn > 0 {
		t.AddNote("stream churn: %d subscription switches = %.1f viewers (fractional, real-sink accounting)",
			rep.TotalStreamChurn, rep.TotalViewerChurn)
	}
	t.AddNote("lp rebuild: %d full builds, %d cells patched in place (%v in lp-build + lp-patch)",
		rep.TotalLPRebuilds, rep.TotalLPPatches, time.Duration(rep.LPConstructionNS()).Round(time.Microsecond))
	t.AddNote("SLO (window %d, target %.0f%% of active sinks): min window availability %.1f%%, %d/%d epochs breached",
		rep.SLOWindow, 100*rep.SLOTarget, 100*rep.MinSLOWindow, rep.SLOBreaches, len(rep.Epochs))
	fmt.Println(t.String())
}

func printComparison(cold, warm *live.RunReport) {
	t := stats.NewTable("cold vs warm+sticky on the same timeline",
		"metric", "cold", "warm+sticky", "ratio")
	ratio := func(a, b float64) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", a/b)
	}
	t.AddRowf("Σ simplex pivots", cold.TotalPivots, warm.TotalPivots,
		ratio(float64(cold.TotalPivots), float64(warm.TotalPivots)))
	t.AddRowf("Σ arc churn", cold.TotalArcChurn, warm.TotalArcChurn,
		ratio(float64(cold.TotalArcChurn), float64(warm.TotalArcChurn)))
	t.AddRowf("Σ reflector churn", cold.TotalReflectorChurn, warm.TotalReflectorChurn,
		ratio(float64(cold.TotalReflectorChurn), float64(warm.TotalReflectorChurn)))
	if cold.TotalStreamChurn > 0 || warm.TotalStreamChurn > 0 {
		t.AddRowf("Σ stream churn", cold.TotalStreamChurn, warm.TotalStreamChurn,
			ratio(float64(cold.TotalStreamChurn), float64(warm.TotalStreamChurn)))
		t.AddRowf("Σ viewer churn", fmt.Sprintf("%.1f", cold.TotalViewerChurn),
			fmt.Sprintf("%.1f", warm.TotalViewerChurn),
			ratio(cold.TotalViewerChurn, warm.TotalViewerChurn))
	}
	t.AddRowf("Σ true cost", cold.TotalTrueCost, warm.TotalTrueCost,
		ratio(cold.TotalTrueCost, warm.TotalTrueCost))
	t.AddRowf("wall time", time.Duration(cold.TotalWallNS).Round(time.Microsecond).String(),
		time.Duration(warm.TotalWallNS).Round(time.Microsecond).String(),
		ratio(float64(cold.TotalWallNS), float64(warm.TotalWallNS)))
	fmt.Println(t.String())
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overlaylive: %v\n", err)
	os.Exit(1)
}

// usage reports a flag-validation failure as a usage error: the message plus
// the flag summary on stderr, exit code 2 (the flag package's own code for
// malformed command lines).
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "overlaylive: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
