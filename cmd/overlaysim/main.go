// Command overlaysim packet-simulates a design against its instance and
// reports per-sink post-reconstruction quality (§1.1 reconstruction
// semantics: dedup, reorder, hole-filling, playback deadline).
//
// Usage:
//
//	overlaysim -in instance.json -design design.json [-packets 100000]
//	           [-model iid|ge] [-deadline-ms 4000] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func main() {
	var (
		inPath   = flag.String("in", "", "instance JSON (required)")
		dPath    = flag.String("design", "", "design JSON (required)")
		packets  = flag.Int("packets", 100000, "packets per stream")
		model    = flag.String("model", "iid", "loss model: iid | ge (Gilbert–Elliott bursts)")
		deadline = flag.Float64("deadline-ms", 4000, "playback deadline (ms)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "per-sink detail")
	)
	flag.Parse()
	if *inPath == "" || *dPath == "" {
		fmt.Fprintln(os.Stderr, "overlaysim: -in and -design are required")
		flag.Usage()
		os.Exit(2)
	}
	in, err := netmodel.LoadFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysim: %v\n", err)
		os.Exit(1)
	}
	df, err := os.Open(*dPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysim: %v\n", err)
		os.Exit(1)
	}
	design, err := netmodel.ReadDesignJSON(df)
	df.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlaysim: %v\n", err)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig(*seed)
	cfg.Packets = *packets
	cfg.DeadlineMs = *deadline
	if *model == "ge" {
		cfg.Model = sim.GilbertElliott
	}
	res := sim.Run(in, design, cfg)
	fmt.Printf("packets=%d model=%s deadline=%.0fms\n", cfg.Packets, *model, cfg.DeadlineMs)
	fmt.Printf("sinks meeting threshold: %d/%d\n", res.MeetCount, res.DemandingSinks)
	fmt.Printf("mean post-reconstruction loss: %.5f  worst: %.5f\n", res.MeanPostLoss, res.WorstPostLoss)
	if *verbose {
		for _, s := range res.Sinks {
			if in.Threshold[s.Sink] <= 0 {
				continue
			}
			fmt.Printf("  sink %3d: copies=%d loss=%.5f dup=%.2f late=%d meets(Φ=%.4f)=%v\n",
				s.Sink, s.Copies, s.PostLoss, s.DupRatio, s.LatePackets, in.Threshold[s.Sink], s.MeetsThreshold)
		}
	}
}
