// Command overlaygen generates overlay-design problem instances as JSON.
//
// Usage:
//
//	overlaygen -kind uniform   -sources 2 -reflectors 10 -sinks 24 -seed 1 -o instance.json
//	overlaygen -kind clustered -sources 2 -regions 3 -isps 2 -sinks-per-region 8 -seed 1
//	overlaygen -kind clustered -sources 3 -streams-per-sink 2 -seed 1   # native multi-stream sinks
//	overlaygen -kind macworld  -seed 1
//	overlaygen -kind setcover  -elements 20 -sets 8 -seed 1
//
// With no -o the instance is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func main() {
	var (
		kind       = flag.String("kind", "uniform", "instance family: uniform | clustered | macworld | setcover")
		sources    = flag.Int("sources", 2, "number of sources/streams")
		reflectors = flag.Int("reflectors", 10, "number of reflectors (uniform)")
		sinks      = flag.Int("sinks", 24, "number of sinks (uniform)")
		regions    = flag.Int("regions", 3, "regions (clustered)")
		isps       = flag.Int("isps", 2, "ISPs = colors (clustered)")
		perRegion  = flag.Int("sinks-per-region", 8, "sinks per region (clustered)")
		streams    = flag.Int("streams-per-sink", 1, "≥2: native multi-stream sinks, each subscribing that many distinct streams (clustered)")
		elements   = flag.Int("elements", 20, "elements (setcover)")
		sets       = flag.Int("sets", 8, "sets (setcover)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *netmodel.Instance
	switch *kind {
	case "uniform":
		in = gen.Uniform(gen.DefaultUniform(*sources, *reflectors, *sinks), *seed)
	case "clustered":
		cc := gen.DefaultClustered(*sources, *regions, *isps, *perRegion)
		if *streams > 1 {
			cc.StreamsPerSink = *streams
			cc.Fanout *= cc.EffectiveStreamsPerSink() // keep per-sink demand growth feasible
		}
		in = gen.Clustered(cc, *seed)
	case "macworld":
		in = gen.MacWorld(gen.DefaultMacWorld(), *seed)
	case "setcover":
		in = gen.SetCover(gen.SetCoverConfig{Elements: *elements, Sets: *sets, Density: 0.35}, *seed)
	default:
		fmt.Fprintf(os.Stderr, "overlaygen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := in.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "overlaygen: generated invalid instance: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		if err := in.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "overlaygen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := in.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "overlaygen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d sources, %d reflectors, %d sinks", *out, in.NumSources, in.NumReflectors, in.NumSinks)
	if in.MultiStream() {
		fmt.Printf(" (%d demand units across %d multi-stream sinks)", in.NumSinks, in.NumViewers())
	}
	fmt.Println()
}
